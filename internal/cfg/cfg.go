// Package cfg builds and analyzes control-flow graphs for cMinor
// functions. It provides the structures the Pegasus builder consumes:
// basic blocks of simple statements, dominators, natural loops, and the
// hyperblock partition (maximal single-entry acyclic regions, paper
// Section 3.1).
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"spatial/internal/cminor"
)

// Instr is a simple statement inside a basic block: an assignment or a
// bare expression evaluated for side effects (a call).
type Instr struct {
	Pos cminor.Pos
	// LHS is nil for a bare expression statement.
	LHS cminor.Expr
	RHS cminor.Expr
}

// TermKind discriminates block terminators.
type TermKind int

// Terminator kinds.
const (
	TermGoto TermKind = iota
	TermIf
	TermRet
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cond cminor.Expr // TermIf
	Then *Block      // TermIf: true target; TermGoto: target
	Else *Block      // TermIf: false target
	Ret  cminor.Expr // TermRet; may be nil
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term
	Preds  []*Block

	// Analysis results, filled by Analyze.
	Idom  *Block
	Loop  *Loop
	Hyper *Hyperblock
	RPO   int
}

// Succs returns the successor blocks in order (then, else).
func (b *Block) Succs() []*Block {
	switch b.Term.Kind {
	case TermGoto:
		return []*Block{b.Term.Then}
	case TermIf:
		return []*Block{b.Term.Then, b.Term.Else}
	}
	return nil
}

// Loop is a natural loop.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	Parent *Loop
	Depth  int
	// Latches are the sources of back edges into Header.
	Latches []*Block
}

// Contains reports whether the loop (including nested loops) contains b.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// Hyperblock is a maximal single-entry acyclic region: the unit of
// predication in CASH.
type Hyperblock struct {
	ID   int
	Seed *Block
	// Blocks in reverse postorder (topological within the hyperblock).
	Blocks []*Block
	// Loop is the innermost loop containing the seed, or nil. When the
	// seed is that loop's header, the hyperblock carries the loop's
	// merge/eta token circuits.
	Loop *Loop
	// IsLoopHeader is set when Seed is a loop header (the hyperblock has
	// back-edge predecessors).
	IsLoopHeader bool
}

// Graph is a function's CFG with analysis results.
type Graph struct {
	Fn     *cminor.FuncDecl
	Entry  *Block
	Blocks []*Block // reverse postorder
	Loops  []*Loop
	Hypers []*Hyperblock
}

// Build lowers a checked function body into a CFG and runs Analyze.
func Build(fn *cminor.FuncDecl) (*Graph, error) {
	if fn.Body == nil {
		return nil, fmt.Errorf("cfg: function %s has no body", fn.Name)
	}
	b := &builder{fn: fn}
	entry := b.newBlock()
	last := b.lowerStmt(entry, fn.Body)
	if last != nil {
		// Implicit return at the end of the function.
		last.Term = Term{Kind: TermRet}
	}
	g := &Graph{Fn: fn, Entry: entry, Blocks: b.blocks}
	g.prune()
	if err := g.Analyze(); err != nil {
		return nil, err
	}
	return g, nil
}

type builder struct {
	fn     *cminor.FuncDecl
	blocks []*Block
	nextID int
	// loop stacks for break/continue.
	breakTargets    []*Block
	continueTargets []*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{ID: b.nextID}
	b.nextID++
	b.blocks = append(b.blocks, blk)
	return blk
}

// lowerStmt lowers s, appending to cur. It returns the block where control
// continues, or nil when the statement always transfers control away.
func (b *builder) lowerStmt(cur *Block, s cminor.Stmt) *Block {
	if cur == nil {
		// Unreachable code after return/break/continue is dropped; the
		// checker has already validated it.
		return nil
	}
	switch s := s.(type) {
	case *cminor.BlockStmt:
		for _, sub := range s.Stmts {
			cur = b.lowerStmt(cur, sub)
			if cur == nil {
				return nil
			}
		}
		return cur
	case *cminor.EmptyStmt, *cminor.PragmaStmt:
		return cur
	case *cminor.DeclStmt:
		v := s.Var
		if v.Init != nil {
			ref := &cminor.VarRef{Pos: v.Pos, Name: v.Name, Decl: v, Typ: v.Type}
			cur.Instrs = append(cur.Instrs, Instr{Pos: s.Pos, LHS: ref, RHS: v.Init})
		}
		for i, e := range v.InitList {
			ref := &cminor.VarRef{Pos: v.Pos, Name: v.Name, Decl: v, Typ: v.Type}
			idx := &cminor.IndexExpr{
				Pos:   v.Pos,
				Array: ref,
				Index: &cminor.NumberLit{Pos: v.Pos, Val: int64(i), Typ: cminor.Int},
				Typ:   v.Type.Elem,
			}
			cur.Instrs = append(cur.Instrs, Instr{Pos: s.Pos, LHS: idx, RHS: e})
		}
		return cur
	case *cminor.ExprStmt:
		return b.lowerExprStmt(cur, s.X, s.Pos)
	case *cminor.IfStmt:
		thenBlk := b.newBlock()
		var elseBlk *Block
		join := b.newBlock()
		if s.Else != nil {
			elseBlk = b.newBlock()
			cur.Term = Term{Kind: TermIf, Cond: s.Cond, Then: thenBlk, Else: elseBlk}
		} else {
			cur.Term = Term{Kind: TermIf, Cond: s.Cond, Then: thenBlk, Else: join}
		}
		tEnd := b.lowerStmt(thenBlk, s.Then)
		if tEnd != nil {
			tEnd.Term = Term{Kind: TermGoto, Then: join}
		}
		if s.Else != nil {
			eEnd := b.lowerStmt(elseBlk, s.Else)
			if eEnd != nil {
				eEnd.Term = Term{Kind: TermGoto, Then: join}
			}
		}
		return join
	case *cminor.WhileStmt:
		header := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		cur.Term = Term{Kind: TermGoto, Then: header}
		header.Term = Term{Kind: TermIf, Cond: s.Cond, Then: body, Else: exit}
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, header)
		bEnd := b.lowerStmt(body, s.Body)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		if bEnd != nil {
			bEnd.Term = Term{Kind: TermGoto, Then: header}
		}
		return exit
	case *cminor.DoWhileStmt:
		body := b.newBlock()
		cond := b.newBlock()
		exit := b.newBlock()
		cur.Term = Term{Kind: TermGoto, Then: body}
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, cond)
		bEnd := b.lowerStmt(body, s.Body)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		if bEnd != nil {
			bEnd.Term = Term{Kind: TermGoto, Then: cond}
		}
		cond.Term = Term{Kind: TermIf, Cond: s.Cond, Then: body, Else: exit}
		return exit
	case *cminor.ForStmt:
		if s.Init != nil {
			cur = b.lowerStmt(cur, s.Init)
			if cur == nil {
				return nil
			}
		}
		header := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		cur.Term = Term{Kind: TermGoto, Then: header}
		if s.Cond != nil {
			header.Term = Term{Kind: TermIf, Cond: s.Cond, Then: body, Else: exit}
		} else {
			header.Term = Term{Kind: TermGoto, Then: body}
		}
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, post)
		bEnd := b.lowerStmt(body, s.Body)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		if bEnd != nil {
			bEnd.Term = Term{Kind: TermGoto, Then: post}
		}
		if s.Post != nil {
			post = b.lowerExprStmt(post, s.Post, s.Pos)
		}
		post.Term = Term{Kind: TermGoto, Then: header}
		return exit
	case *cminor.ReturnStmt:
		cur.Term = Term{Kind: TermRet, Ret: s.X}
		return nil
	case *cminor.BreakStmt:
		cur.Term = Term{Kind: TermGoto, Then: b.breakTargets[len(b.breakTargets)-1]}
		return nil
	case *cminor.ContinueStmt:
		cur.Term = Term{Kind: TermGoto, Then: b.continueTargets[len(b.continueTargets)-1]}
		return nil
	}
	panic(fmt.Sprintf("cfg: unknown statement %T", s))
}

func (b *builder) lowerExprStmt(cur *Block, e cminor.Expr, pos cminor.Pos) *Block {
	if asn, ok := e.(*cminor.AssignExpr); ok {
		cur.Instrs = append(cur.Instrs, Instr{Pos: pos, LHS: asn.LHS, RHS: asn.RHS})
		return cur
	}
	cur.Instrs = append(cur.Instrs, Instr{Pos: pos, RHS: e})
	return cur
}

// prune removes unreachable blocks, merges empty goto chains, and computes
// predecessor lists and reverse postorder.
func (g *Graph) prune() {
	// Collapse empty blocks that only jump elsewhere (created at joins).
	redirect := func(blk *Block) *Block {
		seen := map[*Block]bool{}
		for blk.Term.Kind == TermGoto && len(blk.Instrs) == 0 && blk != g.Entry {
			if seen[blk] {
				break // degenerate self-loop; keep as is
			}
			seen[blk] = true
			blk = blk.Term.Then
		}
		return blk
	}
	for _, blk := range g.Blocks {
		switch blk.Term.Kind {
		case TermGoto:
			blk.Term.Then = redirect(blk.Term.Then)
		case TermIf:
			blk.Term.Then = redirect(blk.Term.Then)
			blk.Term.Else = redirect(blk.Term.Else)
		}
	}
	// DFS for reachability and postorder.
	var post []*Block
	visited := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(blk *Block) {
		if visited[blk] {
			return
		}
		visited[blk] = true
		for _, s := range blk.Succs() {
			dfs(s)
		}
		post = append(post, blk)
	}
	dfs(g.Entry)
	// Reverse postorder.
	g.Blocks = g.Blocks[:0]
	for i := len(post) - 1; i >= 0; i-- {
		blk := post[i]
		blk.RPO = len(g.Blocks)
		blk.ID = len(g.Blocks)
		blk.Preds = nil
		g.Blocks = append(g.Blocks, blk)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs() {
			s.Preds = append(s.Preds, blk)
		}
	}
}

// Analyze computes dominators, natural loops, and the hyperblock
// partition.
func (g *Graph) Analyze() error {
	g.computeDominators()
	if err := g.findLoops(); err != nil {
		return err
	}
	g.partitionHyperblocks()
	return nil
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	g.Entry.Idom = g.Entry
	changed := true
	intersect := func(a, b *Block) *Block {
		for a != b {
			for a.RPO > b.RPO {
				a = a.Idom
			}
			for b.RPO > a.RPO {
				b = b.Idom
			}
		}
		return a
	}
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range blk.Preds {
				if p.Idom == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && blk.Idom != newIdom {
				blk.Idom = newIdom
				changed = true
			}
		}
	}
}

// Dominates reports whether a dominates b.
func Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		if b.Idom == nil || b.Idom == b {
			return false
		}
		b = b.Idom
	}
}

// findLoops identifies natural loops from back edges (edges whose target
// dominates their source). Loops sharing a header are merged. Irreducible
// graphs cannot arise from structured cMinor, so a back edge to a
// non-dominating target is an internal error.
func (g *Graph) findLoops() error {
	byHeader := map[*Block]*Loop{}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs() {
			if s.RPO > blk.RPO {
				continue // forward edge
			}
			if !Dominates(s, blk) {
				return fmt.Errorf("cfg: irreducible back edge b%d->b%d in %s", blk.ID, s.ID, g.Fn.Name)
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				byHeader[s] = l
				g.Loops = append(g.Loops, l)
			}
			l.Latches = append(l.Latches, blk)
			// Walk predecessors from the latch to collect the loop body.
			stack := []*Block{blk}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range n.Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	// Sort loops by size so smaller (inner) loops come first, then set the
	// innermost loop of each block and loop parents.
	sort.Slice(g.Loops, func(i, j int) bool {
		return len(g.Loops[i].Blocks) < len(g.Loops[j].Blocks)
	})
	for _, l := range g.Loops {
		for blk := range l.Blocks {
			if blk.Loop == nil {
				blk.Loop = l
			}
		}
	}
	for _, l := range g.Loops {
		// Parent: the innermost strictly-larger loop containing the header.
		for _, outer := range g.Loops {
			if outer == l || !outer.Blocks[l.Header] {
				continue
			}
			if len(outer.Blocks) <= len(l.Blocks) {
				continue
			}
			if l.Parent == nil || len(outer.Blocks) < len(l.Parent.Blocks) {
				l.Parent = outer
			}
		}
	}
	for _, l := range g.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return nil
}

// partitionHyperblocks assigns every block to a hyperblock: a block joins
// its predecessors' hyperblock when all forward predecessors agree, it is
// not a loop header, and it is in the same innermost loop as the seed;
// otherwise it seeds a new hyperblock. Processing in reverse postorder
// guarantees predecessors are assigned first.
func (g *Graph) partitionHyperblocks() {
	isBackEdge := func(from, to *Block) bool { return to.RPO <= from.RPO }
	for _, blk := range g.Blocks {
		isHeader := false
		for _, p := range blk.Preds {
			if isBackEdge(p, blk) {
				isHeader = true
			}
		}
		var home *Hyperblock
		if !isHeader && blk != g.Entry {
			for _, p := range blk.Preds {
				if p.Hyper == nil {
					home = nil
					break
				}
				if home == nil {
					home = p.Hyper
				} else if home != p.Hyper {
					home = nil
					break
				}
			}
			if home != nil && home.Loop != blk.Loop {
				home = nil
			}
		}
		if home == nil {
			home = &Hyperblock{
				ID:           len(g.Hypers),
				Seed:         blk,
				Loop:         blk.Loop,
				IsLoopHeader: isHeader,
			}
			g.Hypers = append(g.Hypers, home)
		}
		blk.Hyper = home
		home.Blocks = append(home.Blocks, blk)
	}
}

// String renders the CFG for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", g.Fn.Name)
	for _, blk := range g.Blocks {
		loop := ""
		if blk.Loop != nil {
			loop = fmt.Sprintf(" loop(b%d)", blk.Loop.Header.ID)
		}
		fmt.Fprintf(&sb, "  b%d [hyper %d%s]:\n", blk.ID, blk.Hyper.ID, loop)
		for _, in := range blk.Instrs {
			if in.LHS != nil {
				fmt.Fprintf(&sb, "    %s = %s\n", exprString(in.LHS), exprString(in.RHS))
			} else {
				fmt.Fprintf(&sb, "    %s\n", exprString(in.RHS))
			}
		}
		switch blk.Term.Kind {
		case TermGoto:
			fmt.Fprintf(&sb, "    goto b%d\n", blk.Term.Then.ID)
		case TermIf:
			fmt.Fprintf(&sb, "    if %s then b%d else b%d\n",
				exprString(blk.Term.Cond), blk.Term.Then.ID, blk.Term.Else.ID)
		case TermRet:
			if blk.Term.Ret != nil {
				fmt.Fprintf(&sb, "    ret %s\n", exprString(blk.Term.Ret))
			} else {
				fmt.Fprintf(&sb, "    ret\n")
			}
		}
	}
	return sb.String()
}

// exprString renders an expression compactly for CFG dumps.
func exprString(e cminor.Expr) string {
	switch e := e.(type) {
	case *cminor.NumberLit:
		return fmt.Sprintf("%d", e.Val)
	case *cminor.StringLit:
		return fmt.Sprintf("%q", e.Value)
	case *cminor.VarRef:
		return e.Name
	case *cminor.BinExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(e.L), e.Op, exprString(e.R))
	case *cminor.UnExpr:
		return fmt.Sprintf("%s%s", e.Op, exprString(e.X))
	case *cminor.CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(e.Cond), exprString(e.Then), exprString(e.Else))
	case *cminor.IndexExpr:
		return fmt.Sprintf("%s[%s]", exprString(e.Array), exprString(e.Index))
	case *cminor.DerefExpr:
		return "*" + exprString(e.X)
	case *cminor.AddrExpr:
		return "&" + exprString(e.X)
	case *cminor.CastExpr:
		return fmt.Sprintf("(%s)%s", e.To, exprString(e.X))
	case *cminor.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Callee, strings.Join(args, ", "))
	case *cminor.AssignExpr:
		return fmt.Sprintf("%s = %s", exprString(e.LHS), exprString(e.RHS))
	}
	return fmt.Sprintf("<%T>", e)
}
