package cfg

import (
	"testing"

	"spatial/internal/cminor"
)

func buildCFG(t *testing.T, src, fn string) *Graph {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	f := prog.Func(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	g, err := Build(f)
	if err != nil {
		t.Fatalf("cfg build: %v", err)
	}
	return g
}

func TestStraightLine(t *testing.T) {
	g := buildCFG(t, "int f(int a) { int b = a + 1; return b * 2; }", "f")
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1\n%s", len(g.Blocks), g)
	}
	if len(g.Hypers) != 1 {
		t.Errorf("hyperblocks = %d, want 1", len(g.Hypers))
	}
	if len(g.Loops) != 0 {
		t.Errorf("loops = %d, want 0", len(g.Loops))
	}
	if g.Blocks[0].Term.Kind != TermRet {
		t.Errorf("terminator = %v, want ret", g.Blocks[0].Term.Kind)
	}
}

func TestIfDiamondSingleHyperblock(t *testing.T) {
	g := buildCFG(t, `
int f(int a) {
  int r;
  if (a > 0) r = 1; else r = -1;
  return r;
}`, "f")
	if len(g.Hypers) != 1 {
		t.Fatalf("if-diamond should form one hyperblock, got %d\n%s", len(g.Hypers), g)
	}
	if len(g.Blocks) != 4 {
		t.Errorf("blocks = %d, want 4", len(g.Blocks))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildCFG(t, `
int f(int a) {
  int r = 0;
  if (a) r = 1;
  return r;
}`, "f")
	if len(g.Hypers) != 1 {
		t.Fatalf("hyperblocks = %d, want 1\n%s", len(g.Hypers), g)
	}
}

func TestWhileLoopStructure(t *testing.T) {
	g := buildCFG(t, `
int f(int n) {
  int s = 0;
  while (n > 0) { s = s + n; n = n - 1; }
  return s;
}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(g.Loops), g)
	}
	l := g.Loops[0]
	if len(l.Latches) != 1 {
		t.Errorf("latches = %d, want 1", len(l.Latches))
	}
	// Three hyperblocks, like Figure 2: before-loop, loop body, after-loop.
	if len(g.Hypers) != 3 {
		t.Errorf("hyperblocks = %d, want 3\n%s", len(g.Hypers), g)
	}
	var loopHyper *Hyperblock
	for _, h := range g.Hypers {
		if h.IsLoopHeader {
			loopHyper = h
		}
	}
	if loopHyper == nil {
		t.Fatal("no loop-header hyperblock")
	}
	if loopHyper.Loop != l {
		t.Error("loop hyperblock not associated with the loop")
	}
}

func TestForLoopWithBreakContinue(t *testing.T) {
	g := buildCFG(t, `
int f(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) {
    if (i == 13) continue;
    if (s > 100) break;
    s += i;
  }
  return s;
}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(g.Loops), g)
	}
	// The post-loop block must not be inside the loop hyperblock.
	l := g.Loops[0]
	for _, blk := range g.Blocks {
		if blk.Term.Kind == TermRet && l.Contains(blk) {
			t.Error("return block inside loop")
		}
	}
}

func TestNestedLoops(t *testing.T) {
	g := buildCFG(t, `
int f(int n) {
  int s = 0;
  int i;
  int j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      s += i * j;
    }
  }
  return s;
}`, "f")
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2\n%s", len(g.Loops), g)
	}
	inner, outer := g.Loops[0], g.Loops[1]
	if len(inner.Blocks) > len(outer.Blocks) {
		inner, outer = outer, inner
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths = %d, %d; want 2, 1", inner.Depth, outer.Depth)
	}
	// Every block of the inner loop is also in the outer loop.
	for blk := range inner.Blocks {
		if !outer.Blocks[blk] {
			t.Errorf("inner block b%d not in outer loop", blk.ID)
		}
	}
}

func TestDoWhile(t *testing.T) {
	g := buildCFG(t, `
int f(int n) {
  int s = 0;
  do { s += n; n--; } while (n > 0);
  return s;
}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(g.Loops), g)
	}
}

func TestDominators(t *testing.T) {
	g := buildCFG(t, `
int f(int a) {
  int r = 0;
  if (a) { r = 1; } else { r = 2; }
  if (r) { r = 3; }
  return r;
}`, "f")
	entry := g.Entry
	for _, blk := range g.Blocks {
		if !Dominates(entry, blk) {
			t.Errorf("entry does not dominate b%d", blk.ID)
		}
	}
	// The second if's condition block dominates the return block.
	var ret *Block
	for _, blk := range g.Blocks {
		if blk.Term.Kind == TermRet {
			ret = blk
		}
	}
	if ret == nil {
		t.Fatal("no return block")
	}
	if Dominates(ret, entry) {
		t.Error("return should not dominate entry")
	}
}

func TestEarlyReturnsProduceMultipleHyperblocks(t *testing.T) {
	// A return inside a loop leaves the loop; the return block must be in
	// a non-loop hyperblock.
	g := buildCFG(t, `
int f(int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (i == 7) return i;
  }
  return -1;
}`, "f")
	for _, blk := range g.Blocks {
		if blk.Term.Kind == TermRet && blk.Hyper.IsLoopHeader {
			t.Error("return block placed in a loop hyperblock")
		}
	}
}

func TestUnreachableCodeDropped(t *testing.T) {
	g := buildCFG(t, `
int f(int a) {
  return a;
}`, "f")
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
}

func TestInfiniteLoop(t *testing.T) {
	g := buildCFG(t, `
int x;
void f(void) {
  for (;;) { x = x + 1; }
}`, "f")
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(g.Loops), g)
	}
}

func TestRPOIsTopologicalOnForwardEdges(t *testing.T) {
	g := buildCFG(t, `
int f(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) {
    if (i & 1) s += i; else s -= i;
  }
  return s;
}`, "f")
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs() {
			if s.RPO <= blk.RPO {
				// must be a back edge: target dominates source
				if !Dominates(s, blk) {
					t.Errorf("edge b%d->b%d is neither forward nor a back edge", blk.ID, s.ID)
				}
			}
		}
	}
}

func TestHyperblockBlocksAreInRPO(t *testing.T) {
	g := buildCFG(t, `
int f(int a, int b) {
  int r = 0;
  if (a) { if (b) r = 1; else r = 2; } else { r = 3; }
  return r;
}`, "f")
	if len(g.Hypers) != 1 {
		t.Fatalf("nested diamond should be one hyperblock, got %d\n%s", len(g.Hypers), g)
	}
	h := g.Hypers[0]
	for i := 1; i < len(h.Blocks); i++ {
		if h.Blocks[i].RPO <= h.Blocks[i-1].RPO {
			t.Error("hyperblock blocks not in RPO")
		}
	}
}

func TestPredsConsistent(t *testing.T) {
	g := buildCFG(t, `
int f(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) s += i;
  return s;
}`, "f")
	for _, blk := range g.Blocks {
		for _, p := range blk.Preds {
			found := false
			for _, s := range p.Succs() {
				if s == blk {
					found = true
				}
			}
			if !found {
				t.Errorf("b%d lists pred b%d, but not vice versa", blk.ID, p.ID)
			}
		}
	}
}
