package pegasus

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the graph as text, one hyperblock at a time, in a stable
// order. It is the primary debugging aid and is exercised by golden
// tests.
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d hyperblocks, %d nodes)\n", g.Name, len(g.Hypers), g.NumLive())
	byHyper := map[int][]*Node{}
	for _, n := range g.Nodes {
		if !n.Dead {
			byHyper[n.Hyper] = append(byHyper[n.Hyper], n)
		}
	}
	for h := 0; h < len(g.Hypers); h++ {
		nodes := byHyper[h]
		if len(nodes) == 0 {
			continue
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		tag := ""
		if g.Hypers[h].IsLoop {
			tag = " (loop)"
		}
		fmt.Fprintf(&sb, " hyper %d%s:\n", h, tag)
		for _, n := range nodes {
			fmt.Fprintf(&sb, "  %s\n", g.describe(n))
		}
	}
	return sb.String()
}

func refString(r Ref) string {
	if !r.Valid() {
		return "_"
	}
	if r.Out == OutToken {
		return fmt.Sprintf("n%d.t", r.N.ID)
	}
	return fmt.Sprintf("n%d", r.N.ID)
}

func refs(rs []Ref) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = refString(r)
	}
	return strings.Join(parts, ",")
}

func (g *Graph) describe(n *Node) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%-3d %-8s", n.ID, n.opName())
	if len(n.Ins) > 0 {
		fmt.Fprintf(&sb, " ins=[%s]", refs(n.Ins))
	}
	if len(n.Preds) > 0 {
		fmt.Fprintf(&sb, " preds=[%s]", refs(n.Preds))
	}
	if len(n.Toks) > 0 {
		fmt.Fprintf(&sb, " toks=[%s]", refs(n.Toks))
	}
	if n.IsMemOp() {
		fmt.Fprintf(&sb, " bytes=%d class=c%d rw=%s", n.Bytes, n.Class, n.RW)
	}
	if n.Kind == KCall {
		fmt.Fprintf(&sb, " callee=%s", n.Callee.Name)
	}
	return sb.String()
}

func (n *Node) opName() string {
	switch n.Kind {
	case KConst:
		return fmt.Sprintf("const(%d)", n.ConstVal)
	case KParam:
		return fmt.Sprintf("param(%d)", n.ParamIdx)
	case KAddrOf:
		return fmt.Sprintf("addrof(o%d)", n.Obj)
	case KBinOp:
		return fmt.Sprintf("'%s'", n.BinOp)
	case KUnOp:
		return n.UnOp.String()
	case KConv:
		sign := "z"
		if n.ConvSign {
			sign = "s"
		}
		return fmt.Sprintf("conv%d%s", n.ToBits, sign)
	case KTokenGen:
		return fmt.Sprintf("tk(%d)", n.TokN)
	case KMerge:
		if n.TokenOnly {
			return "tmerge"
		}
		return "merge"
	case KEta:
		if n.TokenOnly {
			return "teta"
		}
		return "eta"
	default:
		return n.Kind.String()
	}
}

// Dot renders the graph in Graphviz format; predicate edges are dotted and
// token edges dashed, matching the paper's figures.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for h := range g.Hypers {
		nodes := g.NodesInHyper(h)
		if len(nodes) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"hyper %d\";\n", h, h)
		for _, n := range nodes {
			shape := "box"
			switch n.Kind {
			case KMux:
				shape = "trapezium"
			case KMerge:
				shape = "triangle"
			case KEta:
				shape = "invtriangle"
			case KCombine:
				shape = "invhouse"
			case KTokenGen:
				shape = "doublecircle"
			}
			fmt.Fprintf(&sb, "    n%d [label=%q shape=%s];\n", n.ID, n.opName(), shape)
		}
		fmt.Fprintf(&sb, "  }\n")
	}
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		for _, r := range n.Ins {
			if r.Valid() {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", r.N.ID, n.ID)
			}
		}
		for _, r := range n.Preds {
			if r.Valid() {
				fmt.Fprintf(&sb, "  n%d -> n%d [style=dotted];\n", r.N.ID, n.ID)
			}
		}
		for _, r := range n.Toks {
			if r.Valid() {
				fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed];\n", r.N.ID, n.ID)
			}
		}
	}
	fmt.Fprintf(&sb, "}\n")
	return sb.String()
}
