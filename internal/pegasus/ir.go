// Package pegasus implements the Pegasus intermediate representation: the
// predicated, SSA-based dataflow graph CASH compiles C into (paper
// Section 3). Nodes are operations; edges carry data values, 1-bit
// predicates, or synchronization tokens. Memory may-dependences are
// explicit token edges, which is what makes the paper's memory
// optimizations local graph rewrites.
package pegasus

import (
	"fmt"

	"spatial/internal/alias"
	"spatial/internal/bdd"
	"spatial/internal/cminor"
)

// VType describes the value an output carries.
type VType struct {
	Bits   int  // 1 for predicates, 8/16/32 for data
	Signed bool // sign of sub-word loads/conversions
}

// Common value types.
var (
	I32  = VType{Bits: 32, Signed: true}
	U32  = VType{Bits: 32, Signed: false}
	Pred = VType{Bits: 1}
)

// VTypeOf maps a front-end type to its dataflow value type.
func VTypeOf(t *cminor.Type) VType {
	switch {
	case t == nil || t.Kind == cminor.TypeVoid:
		return VType{}
	case t.IsPointer() || t.Kind == cminor.TypeArray:
		return U32
	default:
		return VType{Bits: t.Bits, Signed: t.Signed}
	}
}

// Out selects which output of a node a Ref denotes.
type Out uint8

// Output selectors.
const (
	OutValue Out = iota // the data/predicate output
	OutToken            // the synchronization token output
)

// Ref is a reference to one output of a node. The zero Ref is "no input".
type Ref struct {
	N   *Node
	Out Out
}

// Valid reports whether the Ref points at a node.
func (r Ref) Valid() bool { return r.N != nil }

// V returns a value-output reference to n.
func V(n *Node) Ref { return Ref{N: n, Out: OutValue} }

// T returns a token-output reference to n.
func T(n *Node) Ref { return Ref{N: n, Out: OutToken} }

// Kind enumerates Pegasus node kinds.
type Kind uint8

// Node kinds.
const (
	KConst    Kind = iota // integer constant
	KParam                // function parameter
	KAddrOf               // address of an abstract object (global, string, or frame slot)
	KBinOp                // arithmetic/logic/comparison
	KUnOp                 // unary operation
	KConv                 // width conversion (truncate + extend)
	KMux                  // decoded multiplexor: value i selected when Preds[i] is true
	KMerge                // control-flow join: forwards whichever input arrives
	KEta                  // gated forward: passes Ins[0]/Toks[0] when Preds[0] is true
	KLoad                 // memory read: value + token outputs
	KStore                // memory write: token output
	KCall                 // procedure call: optional value + token outputs
	KReturn               // procedure exit: value + final token
	KCombine              // token combine ("V" in the figures): waits for all inputs
	KTokenGen             // token generator tk(n) (paper Section 6.3)
	KEntryTok             // the "*" initial token at procedure entry
)

var kindNames = [...]string{
	KConst: "const", KParam: "param", KAddrOf: "addrof",
	KBinOp: "binop", KUnOp: "unop", KConv: "conv",
	KMux: "mux", KMerge: "merge", KEta: "eta",
	KLoad: "load", KStore: "store", KCall: "call", KReturn: "return",
	KCombine: "combine", KTokenGen: "tokgen", KEntryTok: "entrytok",
}

// String returns the kind's name.
func (k Kind) String() string { return kindNames[k] }

// UnOpKind enumerates unary operations.
type UnOpKind uint8

// Unary operations.
const (
	UNeg    UnOpKind = iota // arithmetic negation
	UNot                    // logical not (!= 0 → 0, == 0 → 1)
	UBitNot                 // bitwise complement
	UBool                   // normalize to 0/1 (x != 0)
)

var unOpNames = [...]string{UNeg: "neg", UNot: "not", UBitNot: "bitnot", UBool: "bool"}

// String returns the op's name.
func (u UnOpKind) String() string { return unOpNames[u] }

// Node is one Pegasus operation.
type Node struct {
	ID   int
	Kind Kind
	Pos  cminor.Pos

	// Output descriptors. VT is meaningful when HasValue() is true.
	VT VType

	// Inputs.
	Ins   []Ref // value inputs (addresses, operands, mux data, merge inputs)
	Preds []Ref // predicate inputs (mux: one per data input; memory ops & eta: one)
	Toks  []Ref // token inputs

	// Kind-specific payload.
	ConstVal int64            // KConst
	ParamIdx int              // KParam
	Obj      alias.ObjID      // KAddrOf
	BinOp    cminor.BinOpKind // KBinOp
	Unsigned bool             // KBinOp: unsigned semantics for div/rem/shift/compare
	UnOp     UnOpKind         // KUnOp
	FromBits int              // KConv
	ToBits   int              // KConv
	ConvSign bool             // KConv: sign-extend after truncation
	Bytes    int              // KLoad/KStore access size
	RW       alias.Set        // KLoad/KStore read/write set; KCall: reads ∪ writes
	Reads    alias.Set        // KCall
	Writes   alias.Set        // KCall
	Class    alias.ClassID    // KLoad/KStore location class
	Callee   *cminor.FuncDecl // KCall
	TokN     int              // KTokenGen initial/maximum count
	TokClass alias.ClassID    // token circuit class for token-typed merge/eta/combine/tokengen

	// TokenOnly marks merge/eta instances plumbing tokens rather than
	// values.
	TokenOnly bool

	// Hyper is the hyperblock this node belongs to.
	Hyper int

	// BDDRef caches the boolean function of a predicate-valued node
	// within its hyperblock's bdd.Space; BDDOK marks validity.
	BDDRef bdd.Ref
	BDDOK  bool

	// Dead marks removed nodes awaiting Compact.
	Dead bool
}

// HasValue reports whether the node has a data/predicate output.
func (n *Node) HasValue() bool {
	switch n.Kind {
	case KConst, KParam, KAddrOf, KBinOp, KUnOp, KConv, KMux:
		return true
	case KLoad:
		return true
	case KCall:
		return n.Callee != nil && n.Callee.Ret.Kind != cminor.TypeVoid
	case KMerge, KEta:
		return !n.TokenOnly
	}
	return false
}

// HasToken reports whether the node has a token output.
func (n *Node) HasToken() bool {
	switch n.Kind {
	case KLoad, KStore, KCall, KCombine, KTokenGen, KEntryTok:
		return true
	case KMerge, KEta:
		return n.TokenOnly
	}
	return false
}

// IsMemOp reports whether the node is a load or store.
func (n *Node) IsMemOp() bool { return n.Kind == KLoad || n.Kind == KStore }

// String renders a short description.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	switch n.Kind {
	case KConst:
		return fmt.Sprintf("n%d:const(%d)", n.ID, n.ConstVal)
	case KParam:
		return fmt.Sprintf("n%d:param(%d)", n.ID, n.ParamIdx)
	case KAddrOf:
		return fmt.Sprintf("n%d:addrof(o%d)", n.ID, n.Obj)
	case KBinOp:
		return fmt.Sprintf("n%d:%s", n.ID, n.BinOp)
	case KUnOp:
		return fmt.Sprintf("n%d:%s", n.ID, n.UnOp)
	case KConv:
		return fmt.Sprintf("n%d:conv%d", n.ID, n.ToBits)
	case KTokenGen:
		return fmt.Sprintf("n%d:tk(%d)", n.ID, n.TokN)
	default:
		return fmt.Sprintf("n%d:%s", n.ID, n.Kind)
	}
}

// Hyperblock describes one hyperblock of a function graph.
type Hyperblock struct {
	ID     int
	IsLoop bool
	// LoopPred is the value node computing "the loop takes another
	// iteration" (the predicate controlling back-edge etas); nil for
	// non-loop hyperblocks.
	LoopPred *Node
	// Space is the BDD space for this hyperblock's path predicates.
	Space *bdd.Space
	// predCSE canonicalizes predicate nodes by their BDD function.
	predCSE map[bdd.Ref]*Node
}

// Graph is the Pegasus representation of one procedure.
type Graph struct {
	Name   string
	Fn     *cminor.FuncDecl
	Nodes  []*Node
	Params []*Node
	Entry  *Node // KEntryTok
	Ret    *Node // KReturn
	Hypers []*Hyperblock

	nextID int
}

// NewGraph creates an empty graph for fn (which may be nil for
// synthetic/test graphs).
func NewGraph(fn *cminor.FuncDecl) *Graph {
	g := &Graph{Fn: fn}
	if fn != nil {
		g.Name = fn.Name
	}
	return g
}

// NewNode allocates a node of the given kind in hyperblock hyper.
func (g *Graph) NewNode(kind Kind, hyper int) *Node {
	n := &Node{ID: g.nextID, Kind: kind, Hyper: hyper}
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

// NewHyper allocates a hyperblock.
func (g *Graph) NewHyper(isLoop bool) *Hyperblock {
	h := &Hyperblock{ID: len(g.Hypers), IsLoop: isLoop, Space: bdd.New()}
	g.Hypers = append(g.Hypers, h)
	return h
}

// MaxID returns an exclusive upper bound on node IDs (dense indexing for
// simulators).
func (g *Graph) MaxID() int { return g.nextID }

// Compact removes nodes marked Dead.
func (g *Graph) Compact() {
	live := g.Nodes[:0]
	for _, n := range g.Nodes {
		if !n.Dead {
			live = append(live, n)
		}
	}
	// Zero the tail so dropped nodes can be collected.
	for i := len(live); i < len(g.Nodes); i++ {
		g.Nodes[i] = nil
	}
	g.Nodes = live
}

// NumLive returns the number of live nodes.
func (g *Graph) NumLive() int {
	c := 0
	for _, n := range g.Nodes {
		if !n.Dead {
			c++
		}
	}
	return c
}

// CountMemOps returns the number of live loads and stores.
func (g *Graph) CountMemOps() (loads, stores int) {
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		switch n.Kind {
		case KLoad:
			loads++
		case KStore:
			stores++
		}
	}
	return
}

// Program is a whole compiled program: one graph per function plus the
// shared memory layout.
type Program struct {
	Source *cminor.Program
	Alias  *alias.Analysis
	Funcs  map[string]*Graph
	Layout *Layout
}

// Graph returns the graph of the named function, or nil.
func (p *Program) Graph(name string) *Graph { return p.Funcs[name] }
