package pegasus

import (
	"spatial/internal/bdd"
	"spatial/internal/cminor"
)

// This file implements predicate-node construction with BDD-backed
// canonicalization. Every predicate-valued node in a hyperblock carries a
// BDD over that hyperblock's branch conditions; construction helpers reuse
// an existing node whenever the BDD already has one, so boolean identities
// ((p ∧ ¬p) = false, (p ∧ true) = p, ...) simplify predicates for free.
// This is the "boolean manipulation of controlling predicates" machinery
// of paper Section 5.

// cseFor returns the BDD→node canonicalization table of h.
func (g *Graph) cseFor(h *Hyperblock) map[bdd.Ref]*Node {
	if h.predCSE == nil {
		h.predCSE = map[bdd.Ref]*Node{}
	}
	return h.predCSE
}

// PredBDD returns the boolean function of a predicate-valued node within
// its hyperblock, computing and caching it lazily. Nodes whose function is
// opaque (loaded values, comparisons, parameters, cross-hyperblock
// merges...) get a fresh BDD variable each.
func (g *Graph) PredBDD(n *Node) bdd.Ref {
	if n.BDDOK {
		return n.BDDRef
	}
	h := g.Hypers[n.Hyper]
	s := h.Space
	var r bdd.Ref
	switch {
	case n.Kind == KConst:
		if n.ConstVal != 0 {
			r = bdd.True
		} else {
			r = bdd.False
		}
	case n.Kind == KBinOp && n.VT.Bits == 1 && len(n.Ins) == 2 &&
		sameHyperPred(n, n.Ins[0].N) && sameHyperPred(n, n.Ins[1].N):
		a, b := g.PredBDD(n.Ins[0].N), g.PredBDD(n.Ins[1].N)
		switch n.BinOp {
		case cminor.OpAnd:
			r = s.And(a, b)
		case cminor.OpOr:
			r = s.Or(a, b)
		case cminor.OpXor:
			r = s.Xor(a, b)
		default:
			r = s.Var()
		}
	case n.Kind == KUnOp && n.UnOp == UNot && sameHyperPred(n, n.Ins[0].N):
		r = s.Not(g.PredBDD(n.Ins[0].N))
	default:
		r = s.Var()
	}
	n.BDDRef = r
	n.BDDOK = true
	// Register as the canonical node if the function has none yet.
	cse := g.cseFor(h)
	if _, exists := cse[r]; !exists {
		cse[r] = n
	}
	return r
}

func sameHyperPred(n, in *Node) bool {
	return in != nil && in.Hyper == n.Hyper && in.HasValue() && in.VT.Bits == 1
}

// nodeForBDD returns a node computing the function r in hyperblock h, or
// nil when none is registered.
func (g *Graph) nodeForBDD(h *Hyperblock, r bdd.Ref) *Node {
	if n, ok := g.cseFor(h)[r]; ok && !n.Dead {
		return n
	}
	return nil
}

// RegisterTruePred installs n as the canonical "true" predicate of
// hyperblock h. The builder uses this to anchor each hyperblock's
// constant-true predicate to a dynamic control merge (the hyperblock's
// "wave"), so predicated operations fire once per dynamic execution of
// the hyperblock rather than being statically true.
func (g *Graph) RegisterTruePred(h int, n *Node) {
	n.BDDRef = bdd.True
	n.BDDOK = true
	g.cseFor(g.Hypers[h])[bdd.True] = n
}

// ConstPred returns a constant predicate node (0 or 1) in hyperblock h.
func (g *Graph) ConstPred(h int, val bool) *Node {
	hb := g.Hypers[h]
	want := bdd.False
	cv := int64(0)
	if val {
		want = bdd.True
		cv = 1
	}
	if n := g.nodeForBDD(hb, want); n != nil {
		return n
	}
	n := g.NewNode(KConst, h)
	n.VT = Pred
	n.ConstVal = cv
	n.BDDRef = want
	n.BDDOK = true
	g.cseFor(hb)[want] = n
	return n
}

// PredNot returns a node computing ¬a in a's hyperblock.
func (g *Graph) PredNot(a *Node) *Node {
	h := g.Hypers[a.Hyper]
	r := h.Space.Not(g.PredBDD(a))
	if n := g.nodeForBDD(h, r); n != nil {
		return n
	}
	if r == bdd.True || r == bdd.False {
		return g.ConstPred(a.Hyper, r == bdd.True)
	}
	n := g.NewNode(KUnOp, a.Hyper)
	n.UnOp = UNot
	n.VT = Pred
	n.Ins = []Ref{V(a)}
	n.BDDRef = r
	n.BDDOK = true
	g.cseFor(h)[r] = n
	return n
}

func (g *Graph) predBin(op cminor.BinOpKind, a, b *Node, r bdd.Ref) *Node {
	h := g.Hypers[a.Hyper]
	if n := g.nodeForBDD(h, r); n != nil {
		return n
	}
	if r == bdd.True || r == bdd.False {
		return g.ConstPred(a.Hyper, r == bdd.True)
	}
	// Shortcuts: if the function equals one operand, reuse it.
	if r == g.PredBDD(a) {
		return a
	}
	if r == g.PredBDD(b) {
		return b
	}
	n := g.NewNode(KBinOp, a.Hyper)
	n.BinOp = op
	n.VT = Pred
	n.Ins = []Ref{V(a), V(b)}
	n.BDDRef = r
	n.BDDOK = true
	g.cseFor(h)[r] = n
	return n
}

// PredAnd returns a node computing a ∧ b (a and b must share a
// hyperblock).
func (g *Graph) PredAnd(a, b *Node) *Node {
	h := g.Hypers[a.Hyper]
	return g.predBin(cminor.OpAnd, a, b, h.Space.And(g.PredBDD(a), g.PredBDD(b)))
}

// PredOr returns a node computing a ∨ b.
func (g *Graph) PredOr(a, b *Node) *Node {
	h := g.Hypers[a.Hyper]
	return g.predBin(cminor.OpOr, a, b, h.Space.Or(g.PredBDD(a), g.PredBDD(b)))
}

// PredAndNot returns a node computing a ∧ ¬b — the store-before-store
// rewrite of Figure 8.
func (g *Graph) PredAndNot(a, b *Node) *Node {
	h := g.Hypers[a.Hyper]
	r := h.Space.AndNot(g.PredBDD(a), g.PredBDD(b))
	if r == h.Space.Not(g.PredBDD(b)) {
		return g.PredNot(b)
	}
	return g.predBin(cminor.OpAnd, a, g.PredNot(b), r)
}

// PredImplies reports whether a's predicate implies b's (both in the same
// hyperblock). Used for post-dominance tests between memory operations.
func (g *Graph) PredImplies(a, b *Node) bool {
	if a.Hyper != b.Hyper {
		return false
	}
	h := g.Hypers[a.Hyper]
	return h.Space.Implies(g.PredBDD(a), g.PredBDD(b))
}

// PredDisjoint reports whether two predicates can never be true together.
func (g *Graph) PredDisjoint(a, b *Node) bool {
	if a.Hyper != b.Hyper {
		return false
	}
	h := g.Hypers[a.Hyper]
	return h.Space.Disjoint(g.PredBDD(a), g.PredBDD(b))
}

// IsConstFalse reports whether the node's predicate function is constant
// false.
func (g *Graph) IsConstFalse(n *Node) bool { return g.PredBDD(n) == bdd.False }

// IsConstTrue reports whether the node's predicate function is constant
// true.
func (g *Graph) IsConstTrue(n *Node) bool { return g.PredBDD(n) == bdd.True }
