package pegasus

import (
	"strings"
	"testing"
)

// tinyGraph builds a minimal well-formed graph by hand:
//
//	entrytok → load(addr=const, pred=const1) → store → return
func tinyGraph(t *testing.T) (*Graph, *Node, *Node) {
	t.Helper()
	g := NewGraph(nil)
	// Constructing without a FuncDecl: only the fields Verify touches
	// matter.
	g.Fn = nil
	g.Name = "tiny"
	g.NewHyper(false)
	entry := g.NewNode(KEntryTok, 0)
	g.Entry = entry
	addr := g.NewNode(KConst, 0)
	addr.VT = U32
	addr.ConstVal = 0x1000
	p := g.ConstPred(0, true)
	load := g.NewNode(KLoad, 0)
	load.VT = I32
	load.Bytes = 4
	load.Ins = []Ref{V(addr)}
	load.Preds = []Ref{V(p)}
	load.Toks = []Ref{T(entry)}
	val := g.NewNode(KConst, 0)
	val.VT = I32
	val.ConstVal = 7
	store := g.NewNode(KStore, 0)
	store.Bytes = 4
	store.Ins = []Ref{V(addr), V(val)}
	store.Preds = []Ref{V(p)}
	store.Toks = []Ref{T(load)}
	ret := g.NewNode(KReturn, 0)
	ret.Ins = []Ref{V(load)}
	ret.Toks = []Ref{T(store)}
	g.Ret = ret
	return g, load, store
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	g, _, _ := tinyGraph(t)
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsBadShapes(t *testing.T) {
	cases := map[string]func(g *Graph, load, store *Node){
		"load without address": func(g *Graph, load, store *Node) {
			load.Ins = nil
		},
		"store with one input": func(g *Graph, load, store *Node) {
			store.Ins = store.Ins[:1]
		},
		"bad access size": func(g *Graph, load, store *Node) {
			load.Bytes = 3
		},
		"value ref to token output": func(g *Graph, load, store *Node) {
			store.Ins[1] = Ref{N: load, Out: OutToken}
		},
		"token ref to value output": func(g *Graph, load, store *Node) {
			store.Toks[0] = Ref{N: load, Out: OutValue}
		},
		"predicate wider than 1 bit": func(g *Graph, load, store *Node) {
			wide := g.NewNode(KConst, 0)
			wide.VT = I32
			load.Preds[0] = V(wide)
		},
		"use of dead node": func(g *Graph, load, store *Node) {
			load.Ins[0].N.Dead = true
		},
		"missing input": func(g *Graph, load, store *Node) {
			load.Ins[0] = Ref{}
		},
		"bad hyperblock": func(g *Graph, load, store *Node) {
			load.Hyper = 99
		},
	}
	for name, breakIt := range cases {
		g, load, store := tinyGraph(t)
		breakIt(g, load, store)
		if err := g.Verify(); err == nil {
			t.Errorf("%s: Verify accepted a malformed graph", name)
		}
	}
}

func TestVerifyDetectsCycle(t *testing.T) {
	g, load, store := tinyGraph(t)
	// Make the load depend on the store's token while the store depends
	// on the load's — a forward cycle.
	load.Toks = append(load.Toks, T(store))
	if err := g.Verify(); err == nil {
		t.Error("Verify accepted a token cycle")
	}
}

func TestTopoOrdersInputsFirst(t *testing.T) {
	g, _, _ := tinyGraph(t)
	order := g.Topo()
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range order {
		n.EachInput(func(r *Ref, p Port, i int) {
			if r.Valid() && !g.IsBackEdge(r.N, n) && pos[r.N] > pos[n] {
				t.Errorf("input %s ordered after %s", r.N, n)
			}
		})
	}
}

func TestReachability(t *testing.T) {
	g, load, store := tinyGraph(t)
	r := NewReachability(g)
	if !r.Reaches(load, store) {
		t.Error("load should reach store")
	}
	if r.Reaches(store, load) {
		t.Error("store should not reach load")
	}
	if !r.Reaches(load, load) {
		t.Error("node should reach itself")
	}
}

func TestReplaceUses(t *testing.T) {
	g, load, store := tinyGraph(t)
	newTok := g.NewNode(KCombine, 0)
	newTok.Toks = []Ref{T(g.Entry)}
	g.ReplaceUses(load, OutToken, T(newTok))
	if store.Toks[0].N != newTok {
		t.Error("token use not rewired")
	}
	// The value use (return input) must be untouched.
	if g.Ret.Ins[0].N != load {
		t.Error("value use was wrongly rewired")
	}
}

func TestUsesIndex(t *testing.T) {
	g, load, store := tinyGraph(t)
	uses := g.Uses()
	foundTok := false
	for _, u := range uses[load] {
		if u.User == store && u.Out == OutToken {
			foundTok = true
		}
	}
	if !foundTok {
		t.Error("uses index missing store's token use of load")
	}
}

func TestCompact(t *testing.T) {
	g, load, _ := tinyGraph(t)
	before := len(g.Nodes)
	// Kill the return's value use first so the graph stays valid.
	g.Ret.Ins = nil
	spliceOut := load.Toks
	_ = spliceOut
	n := g.NewNode(KConst, 0)
	n.Dead = true
	g.Compact()
	if len(g.Nodes) != before {
		t.Errorf("Compact removed %d nodes, want exactly the dead one gone (have %d)", before+1-len(g.Nodes), len(g.Nodes))
	}
	if g.NumLive() != len(g.Nodes) {
		t.Error("NumLive disagrees with Compact")
	}
}

func TestPredAlgebra(t *testing.T) {
	g := NewGraph(nil)
	g.Name = "preds"
	g.NewHyper(false)
	tru := g.ConstPred(0, true)
	fls := g.ConstPred(0, false)
	if !g.IsConstTrue(tru) || !g.IsConstFalse(fls) {
		t.Fatal("constant predicates misclassified")
	}
	// An opaque condition node.
	c := g.NewNode(KConst, 0)
	c.VT = Pred
	c.ConstVal = 1
	// Force c to be opaque by giving it a fresh var through a comparison
	// surrogate: use a unop Bool of a 32-bit value.
	v := g.NewNode(KConst, 0)
	v.VT = I32
	cond := g.NewNode(KUnOp, 0)
	cond.UnOp = UBool
	cond.VT = Pred
	cond.Ins = []Ref{V(v)}

	notC := g.PredNot(cond)
	if g.PredNot(notC) != cond {
		t.Error("double negation did not canonicalize")
	}
	if g.PredAnd(cond, notC) != fls {
		t.Error("c ∧ ¬c should be the false node")
	}
	if g.PredOr(cond, notC) != tru {
		t.Error("c ∨ ¬c should be the true node")
	}
	if g.PredAnd(cond, tru) != cond {
		t.Error("c ∧ true should reuse c")
	}
	if !g.PredImplies(g.PredAnd(cond, cond), cond) {
		t.Error("c should imply c")
	}
	if !g.PredDisjoint(cond, notC) {
		t.Error("c and ¬c should be disjoint")
	}
	if g.PredAndNot(cond, cond) != fls {
		t.Error("c ∧ ¬c via AndNot should be false")
	}
}

func TestDumpAndDot(t *testing.T) {
	g, _, _ := tinyGraph(t)
	d := g.Dump()
	for _, want := range []string{"load", "store", "return", "entrytok"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "style=dashed") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
}

func TestVTypeOf(t *testing.T) {
	if VTypeOf(nil) != (VType{}) {
		t.Error("nil type should map to the zero VType")
	}
}
