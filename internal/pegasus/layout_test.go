package pegasus_test

// External test package so the full front end can be used without an
// import cycle (build imports pegasus).

import (
	"testing"

	"spatial/internal/alias"
	"spatial/internal/build"
	"spatial/internal/cminor"
	"spatial/internal/dataflow"
	"spatial/internal/pegasus"
)

func layoutFor(t *testing.T, src string) (*pegasus.Program, *alias.Analysis) {
	t.Helper()
	prog, err := cminor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cminor.Check(prog); err != nil {
		t.Fatal(err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Alias
}

func objID(t *testing.T, an *alias.Analysis, name string) alias.ObjID {
	t.Helper()
	for _, o := range an.Objects {
		if o.Name == name {
			return o.ID
		}
	}
	t.Fatalf("no object %s", name)
	return 0
}

func TestLayoutDisjointGlobals(t *testing.T) {
	p, an := layoutFor(t, `
int a[10];
int b[10];
int x;
void f(void) { x = a[0] + b[0]; }
`)
	l := p.Layout
	type extent struct{ lo, hi uint32 }
	var extents []extent
	for _, name := range []string{"a", "b", "x"} {
		id := objID(t, an, name)
		addr, ok := l.AddressOfObject(id)
		if !ok {
			t.Fatalf("%s has no address", name)
		}
		extents = append(extents, extent{addr, addr + l.ObjSize[id]})
	}
	for i := range extents {
		for j := i + 1; j < len(extents); j++ {
			a, b := extents[i], extents[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("objects %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestLayoutPointerInitializers(t *testing.T) {
	p, an := layoutFor(t, `
int target;
int *gp = &target;
const char *msg = "hey";
int arr[4];
int *ap = arr;
void f(void) { *gp = 1; }
`)
	l := p.Layout
	// gp's initial cell must hold target's address.
	targetAddr, _ := l.AddressOfObject(objID(t, an, "target"))
	gpAddr, _ := l.AddressOfObject(objID(t, an, "gp"))
	arrAddr, _ := l.AddressOfObject(objID(t, an, "arr"))
	apAddr, _ := l.AddressOfObject(objID(t, an, "ap"))
	foundGP, foundAP, foundMsg := false, false, false
	for _, c := range l.Init {
		if c.Addr == gpAddr && c.Value == int64(targetAddr) {
			foundGP = true
		}
		if c.Addr == apAddr && c.Value == int64(arrAddr) {
			foundAP = true
		}
		if c.Addr == l.Addr[an.StringObject(0)] && c.Value == 'h' {
			foundMsg = true
		}
	}
	if !foundGP {
		t.Error("&target initializer not materialized")
	}
	if !foundAP {
		t.Error("array-name initializer not materialized")
	}
	if !foundMsg {
		t.Error("string bytes not materialized")
	}
	// And the whole thing runs.
	res, err := dataflow.Run(p, "f", nil, dataflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestLayoutFrameOffsets(t *testing.T) {
	p, an := layoutFor(t, `
int leaf(int *q) { return *q; }
int f(void) {
  int buf[8];
  int x = 3;
  buf[0] = leaf(&x);
  return buf[0];
}
`)
	l := p.Layout
	fObjBuf := objID(t, an, "f.buf")
	fObjX := objID(t, an, "f.x")
	offBuf := l.FrameOffset[fObjBuf]
	offX := l.FrameOffset[fObjX]
	if offBuf == offX {
		t.Error("frame slots collide")
	}
	var fdecl *cminor.FuncDecl
	for _, fn := range p.Source.Funcs {
		if fn.Name == "f" {
			fdecl = fn
		}
	}
	if l.FrameSize[fdecl] < 8*4+4 {
		t.Errorf("frame size %d too small", l.FrameSize[fdecl])
	}
	res, err := dataflow.Run(p, "f", nil, dataflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Errorf("f() = %d, want 3", res.Value)
	}
}

func TestLayoutGlobalScalarInit(t *testing.T) {
	p, an := layoutFor(t, `
int x = 42;
short s = -7;
char c = 'Z';
int f(void) { return x + s + c; }
`)
	res, err := dataflow.Run(p, "f", nil, dataflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42-7+'Z' {
		t.Errorf("f() = %d, want %d", res.Value, 42-7+'Z')
	}
	_ = an
}

func TestLayoutRejectsOversizedData(t *testing.T) {
	_, err := cminor.Parse("int huge[2000000];")
	if err != nil {
		t.Skip("parser rejected first")
	}
	prog, _ := cminor.Parse("int huge[2000000]; void f(void) { huge[0] = 1; }")
	if err := cminor.Check(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := build.Compile(prog); err == nil {
		t.Error("8MB of globals should not fit the 4MB memory")
	}
}
