package pegasus

import "fmt"

// Port classifies which input slice of a node an edge lands in.
type Port uint8

// Port classes.
const (
	PortIn Port = iota
	PortPred
	PortTok
)

// Use records one use of a node's output.
type Use struct {
	User *Node
	Port Port
	Idx  int
	Out  Out // which output of the producer is used
}

// EachInput invokes f over every input reference of n. The pointer allows
// in-place rewiring.
func (n *Node) EachInput(f func(r *Ref, port Port, idx int)) {
	for i := range n.Ins {
		f(&n.Ins[i], PortIn, i)
	}
	for i := range n.Preds {
		f(&n.Preds[i], PortPred, i)
	}
	for i := range n.Toks {
		f(&n.Toks[i], PortTok, i)
	}
}

// Uses builds the use index for all live nodes: producer → list of uses.
func (g *Graph) Uses() map[*Node][]Use {
	uses := make(map[*Node][]Use, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		user := n
		n.EachInput(func(r *Ref, port Port, idx int) {
			if r.Valid() {
				uses[r.N] = append(uses[r.N], Use{User: user, Port: port, Idx: idx, Out: r.Out})
			}
		})
	}
	return uses
}

// ReplaceUses rewires every use of output (old, out) to point at newRef.
func (g *Graph) ReplaceUses(old *Node, out Out, newRef Ref) {
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		n.EachInput(func(r *Ref, port Port, idx int) {
			if r.N == old && r.Out == out {
				*r = newRef
			}
		})
	}
}

// RemoveTokInput deletes token input idx from n.
func (n *Node) RemoveTokInput(idx int) {
	n.Toks = append(n.Toks[:idx], n.Toks[idx+1:]...)
}

// AddTok appends a token input, skipping duplicates and invalid refs.
func (n *Node) AddTok(r Ref) {
	if !r.Valid() {
		return
	}
	for _, t := range n.Toks {
		if t == r {
			return
		}
	}
	n.Toks = append(n.Toks, r)
}

// InputNodes returns the distinct producer nodes of n's inputs.
func (n *Node) InputNodes() []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	n.EachInput(func(r *Ref, port Port, idx int) {
		if r.Valid() && !seen[r.N] {
			seen[r.N] = true
			out = append(out, r.N)
		}
	})
	return out
}

// IsBackEdge reports whether the edge from producer p into consumer c is a
// loop back edge: an edge into a merge node of a loop hyperblock from a
// hyperblock at the same or a later position. Hyperblock IDs are assigned
// in reverse postorder of their seeds, so forward inter-hyperblock edges
// always increase the ID; only back edges (from the loop body itself or
// from a later hyperblock inside the same loop) go backward or sideways.
func (g *Graph) IsBackEdge(p, c *Node) bool {
	return c.Kind == KMerge && g.Hypers[c.Hyper].IsLoop && p.Hyper >= c.Hyper
}

// Forward returns the forward dataflow edges of n (skipping back edges),
// i.e. n's input producers that are not reached through a loop back edge.
// A token generator's credit input (its token port) is also excluded: the
// credit returned by the leading loop is consumed by a *later* iteration
// of the trailing loop, through the generator's internal counter — it is
// a cross-iteration edge, not a combinational path (paper Section 6.3).
func (g *Graph) forwardInputs(n *Node) []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	n.EachInput(func(r *Ref, port Port, idx int) {
		if !r.Valid() || seen[r.N] {
			return
		}
		if n.Kind == KTokenGen && port == PortTok {
			return
		}
		if g.IsBackEdge(r.N, n) {
			return
		}
		seen[r.N] = true
		out = append(out, r.N)
	})
	return out
}

// Topo returns all live nodes in a topological order of the forward edges
// (back edges into loop merges are ignored). It panics on an unexpected
// cycle; Verify reports cycles with diagnostics first.
func (g *Graph) Topo() []*Node {
	state := map[*Node]int{} // 0 unvisited, 1 in stack, 2 done
	var order []*Node
	var visit func(*Node)
	visit = func(n *Node) {
		switch state[n] {
		case 1:
			panic(fmt.Sprintf("pegasus: cycle through %s in %s", n, g.Name))
		case 2:
			return
		}
		state[n] = 1
		for _, p := range g.forwardInputs(n) {
			if !p.Dead {
				visit(p)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range g.Nodes {
		if !n.Dead {
			visit(n)
		}
	}
	return order
}

// Reachability answers "can a value/token flow from a to b along forward
// edges?" It is the cycle test the paper's rewriting rules need
// (Section 5: "testing for the cycle-free condition is easily accomplished
// with a reachability computation which ignores the back-edges"). The
// result is cached for a batch of queries and must be invalidated (by
// building a new Reachability) after the graph changes.
type Reachability struct {
	g    *Graph
	memo map[*Node]map[*Node]bool
}

// NewReachability creates a fresh reachability cache for g.
func NewReachability(g *Graph) *Reachability {
	return &Reachability{g: g, memo: map[*Node]map[*Node]bool{}}
}

// Reaches reports whether from can reach to along forward dataflow edges
// (to's inputs are searched transitively for from).
func (r *Reachability) Reaches(from, to *Node) bool {
	if from == to {
		return true
	}
	// reachedBy[to] = set of nodes that reach to.
	if m, ok := r.memo[to]; ok {
		return m[from]
	}
	m := map[*Node]bool{}
	var walk func(*Node)
	walk = func(n *Node) {
		for _, p := range r.g.forwardInputs(n) {
			if p.Dead || m[p] {
				continue
			}
			m[p] = true
			walk(p)
		}
	}
	walk(to)
	r.memo[to] = m
	return m[from]
}

// TokenSuccs returns, for each live token-producing node, the nodes that
// consume its token output.
func (g *Graph) TokenSuccs() map[*Node][]*Node {
	succs := map[*Node][]*Node{}
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		for _, t := range n.Toks {
			if t.Valid() {
				succs[t.N] = append(succs[t.N], n)
			}
		}
	}
	return succs
}

// NodesInHyper returns the live nodes of hyperblock h.
func (g *Graph) NodesInHyper(h int) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if !n.Dead && n.Hyper == h {
			out = append(out, n)
		}
	}
	return out
}

// MemOpsInHyper returns the live loads/stores/calls of hyperblock h.
func (g *Graph) MemOpsInHyper(h int) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if !n.Dead && n.Hyper == h && (n.IsMemOp() || n.Kind == KCall) {
			out = append(out, n)
		}
	}
	return out
}
