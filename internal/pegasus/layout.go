package pegasus

import (
	"fmt"

	"spatial/internal/alias"
	"spatial/internal/cminor"
)

// Layout assigns simulated memory addresses: globals and strings get
// static addresses; local memory objects get frame offsets resolved
// against the activation's frame base at run time.
type Layout struct {
	// GlobalBase is the address of the first global object.
	GlobalBase uint32
	// StackBase is where the first activation frame starts (frames grow
	// upward in the simulator).
	StackBase uint32
	// MemSize is the total simulated memory size in bytes.
	MemSize uint32

	// Addr maps static objects (globals, strings) to their base address.
	Addr map[alias.ObjID]uint32
	// FrameOffset maps local objects to their offset within the frame.
	FrameOffset map[alias.ObjID]uint32
	// FrameSize maps each function to its frame size in bytes.
	FrameSize map[*cminor.FuncDecl]uint32
	// ObjSize records every object's size in bytes.
	ObjSize map[alias.ObjID]uint32

	// Init lists (address, size, value) triples to poke into memory
	// before execution (global initializers and string bytes).
	Init []InitCell
}

// InitCell is one initialized memory cell.
type InitCell struct {
	Addr  uint32
	Size  int
	Value int64
}

const defaultMemSize = 4 << 20

func align4(x uint32) uint32 { return (x + 3) &^ 3 }

// BuildLayout computes the memory layout for a program.
func BuildLayout(src *cminor.Program, an *alias.Analysis) (*Layout, error) {
	l := &Layout{
		GlobalBase:  0x1000,
		MemSize:     defaultMemSize,
		Addr:        map[alias.ObjID]uint32{},
		FrameOffset: map[alias.ObjID]uint32{},
		FrameSize:   map[*cminor.FuncDecl]uint32{},
		ObjSize:     map[alias.ObjID]uint32{},
	}
	// First pass: assign every static address (so initializers may refer
	// to objects declared later).
	next := l.GlobalBase
	frameNext := map[*cminor.FuncDecl]uint32{}
	for _, o := range an.Objects {
		switch o.Kind {
		case alias.ObjGlobal:
			size := uint32(o.Decl.Type.Size())
			if size == 0 {
				// Unsized extern array: give it a default extent so
				// simulations have backing storage.
				size = 4096
			}
			l.Addr[o.ID] = next
			l.ObjSize[o.ID] = size
			next = align4(next + size)
		case alias.ObjString:
			s := src.Strings[o.StringIdx]
			size := uint32(len(s.Value) + 1)
			l.Addr[o.ID] = next
			l.ObjSize[o.ID] = size
			next = align4(next + size)
		case alias.ObjLocal:
			size := uint32(o.Decl.Type.Size())
			if size == 0 {
				size = 4
			}
			off := frameNext[o.Fn]
			l.FrameOffset[o.ID] = off
			l.ObjSize[o.ID] = size
			frameNext[o.Fn] = align4(off + size)
		case alias.ObjUnknown:
			// No storage.
		}
	}
	// Second pass: emit initial memory contents.
	for _, o := range an.Objects {
		switch o.Kind {
		case alias.ObjGlobal:
			if err := l.initGlobal(o, an); err != nil {
				return nil, err
			}
		case alias.ObjString:
			s := src.Strings[o.StringIdx]
			base := l.Addr[o.ID]
			for i := 0; i < len(s.Value); i++ {
				l.Init = append(l.Init, InitCell{Addr: base + uint32(i), Size: 1, Value: int64(s.Value[i])})
			}
			l.Init = append(l.Init, InitCell{Addr: base + uint32(len(s.Value)), Size: 1, Value: 0})
		}
	}
	for fn, sz := range frameNext {
		l.FrameSize[fn] = sz
	}
	l.StackBase = align4(next + 64)
	if l.StackBase >= l.MemSize {
		return nil, fmt.Errorf("layout: data segment (%d bytes) exceeds memory", next)
	}
	return l, nil
}

func (l *Layout) initGlobal(o *alias.Object, an *alias.Analysis) error {
	g := o.Decl
	base := l.Addr[o.ID]
	if g.Init != nil {
		v, err := l.initValue(g.Init, an)
		if err != nil {
			return fmt.Errorf("global %s: %v", g.Name, err)
		}
		l.Init = append(l.Init, InitCell{Addr: base, Size: int(g.Type.Decay().Size()), Value: v})
	}
	if len(g.InitList) > 0 {
		elem := g.Type.Elem
		esz := uint32(elem.Size())
		for i, e := range g.InitList {
			v, err := l.initValue(e, an)
			if err != nil {
				return fmt.Errorf("global %s[%d]: %v", g.Name, i, err)
			}
			l.Init = append(l.Init, InitCell{Addr: base + uint32(i)*esz, Size: int(esz), Value: v})
		}
	}
	return nil
}

// initValue evaluates a constant global initializer. String literals,
// &global, and array names resolve to their assigned static addresses
// (all addresses are assigned before initializers are evaluated).
func (l *Layout) initValue(e cminor.Expr, an *alias.Analysis) (int64, error) {
	if v, err := cminor.ConstEval(e); err == nil {
		return v, nil
	}
	switch e := e.(type) {
	case *cminor.StringLit:
		if addr, ok := l.Addr[an.StringObject(e.Index)]; ok {
			return int64(addr), nil
		}
		return 0, fmt.Errorf("string literal address not yet assigned (declare the global after use or avoid string initializers)")
	case *cminor.AddrExpr:
		if lv, ok := e.X.(*cminor.VarRef); ok {
			if id, ok := an.ObjectOf(lv.Decl); ok {
				if addr, ok := l.Addr[id]; ok {
					return int64(addr), nil
				}
			}
		}
	case *cminor.VarRef:
		// An array name used as an initializer value.
		if id, ok := an.ObjectOf(e.Decl); ok {
			if addr, ok := l.Addr[id]; ok {
				return int64(addr), nil
			}
		}
	}
	return 0, fmt.Errorf("unsupported initializer %T", e)
}

// AddressOfObject returns the static address of a global/string object.
func (l *Layout) AddressOfObject(o alias.ObjID) (uint32, bool) {
	a, ok := l.Addr[o]
	return a, ok
}
