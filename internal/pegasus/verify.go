package pegasus

import "fmt"

// Verify checks the structural invariants of a graph. It is run after
// construction and after every optimization pass in tests; a failure
// indicates a compiler bug, not a user error.
//
// Invariants:
//   - every input Ref points at a live node and at an output the producer
//     actually has (value refs need HasValue, token refs need HasToken);
//   - predicate inputs are 1-bit values;
//   - mux nodes pair each data input with a predicate input;
//   - memory operations carry a predicate, an address, and a size;
//   - the graph is acyclic when loop back edges (into merges of loop
//     hyperblocks) are ignored;
//   - hyperblock indices are in range.
func (g *Graph) Verify() error {
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		if n.Hyper < 0 || n.Hyper >= len(g.Hypers) {
			return fmt.Errorf("%s: %s has bad hyperblock %d", g.Name, n, n.Hyper)
		}
		var err error
		n.EachInput(func(r *Ref, port Port, idx int) {
			if err != nil {
				return
			}
			if !r.Valid() {
				err = fmt.Errorf("%s: %s has missing input (port %d, idx %d)", g.Name, n, port, idx)
				return
			}
			if r.N.Dead {
				err = fmt.Errorf("%s: %s uses dead node %s", g.Name, n, r.N)
				return
			}
			switch port {
			case PortIn:
				if r.Out != OutValue || !r.N.HasValue() {
					err = fmt.Errorf("%s: %s value input %d references %s, which has no value output", g.Name, n, idx, r.N)
				}
			case PortPred:
				if r.Out != OutValue || !r.N.HasValue() {
					err = fmt.Errorf("%s: %s predicate input %d references non-value %s", g.Name, n, idx, r.N)
				} else if r.N.VT.Bits != 1 {
					err = fmt.Errorf("%s: %s predicate input %d references %d-bit %s", g.Name, n, idx, r.N.VT.Bits, r.N)
				}
			case PortTok:
				if r.Out != OutToken || !r.N.HasToken() {
					err = fmt.Errorf("%s: %s token input %d references %s, which has no token output", g.Name, n, idx, r.N)
				}
			}
		})
		if err != nil {
			return err
		}
		if err := g.verifyShape(n); err != nil {
			return err
		}
	}
	return g.verifyAcyclic()
}

func (g *Graph) verifyShape(n *Node) error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("%s: %s: %s", g.Name, n, fmt.Sprintf(format, args...))
	}
	switch n.Kind {
	case KConst, KParam, KAddrOf, KEntryTok:
		if len(n.Ins)+len(n.Preds)+len(n.Toks) != 0 {
			return bad("source node must have no inputs")
		}
	case KBinOp:
		if len(n.Ins) != 2 {
			return bad("binop needs 2 inputs, has %d", len(n.Ins))
		}
	case KUnOp, KConv:
		if len(n.Ins) != 1 {
			return bad("unary op needs 1 input, has %d", len(n.Ins))
		}
	case KMux:
		if len(n.Ins) == 0 || len(n.Ins) != len(n.Preds) {
			return bad("mux has %d inputs and %d predicates", len(n.Ins), len(n.Preds))
		}
	case KMerge:
		if n.TokenOnly {
			if len(n.Toks) == 0 || len(n.Ins) != 0 {
				return bad("token merge must have only token inputs")
			}
		} else if len(n.Ins) == 0 || len(n.Toks) != 0 {
			return bad("value merge must have only value inputs")
		}
	case KEta:
		if len(n.Preds) != 1 {
			return bad("eta needs exactly 1 predicate")
		}
		if n.TokenOnly {
			if len(n.Toks) != 1 || len(n.Ins) != 0 {
				return bad("token eta needs exactly 1 token input")
			}
		} else if len(n.Ins) != 1 || len(n.Toks) != 0 {
			return bad("value eta needs exactly 1 value input")
		}
	case KLoad:
		if len(n.Ins) != 1 || len(n.Preds) != 1 {
			return bad("load needs 1 address and 1 predicate")
		}
		if n.Bytes != 1 && n.Bytes != 2 && n.Bytes != 4 {
			return bad("load has bad size %d", n.Bytes)
		}
	case KStore:
		if len(n.Ins) != 2 || len(n.Preds) != 1 {
			return bad("store needs address+value and 1 predicate")
		}
		if n.Bytes != 1 && n.Bytes != 2 && n.Bytes != 4 {
			return bad("store has bad size %d", n.Bytes)
		}
	case KCall:
		if n.Callee == nil {
			return bad("call has no callee")
		}
		if len(n.Preds) != 1 {
			return bad("call needs 1 predicate")
		}
	case KReturn:
		if len(n.Ins) > 1 {
			return bad("return has %d values", len(n.Ins))
		}
		if len(n.Toks) != 1 {
			return bad("return needs exactly 1 token input, has %d", len(n.Toks))
		}
	case KCombine:
		if len(n.Toks) < 1 {
			return bad("combine needs token inputs")
		}
	case KTokenGen:
		if len(n.Preds) != 1 || len(n.Toks) != 1 {
			return bad("token generator needs 1 predicate and 1 token input")
		}
		if n.TokN <= 0 {
			return bad("token generator has non-positive count %d", n.TokN)
		}
	}
	return nil
}

// verifyAcyclic checks that forward edges form a DAG.
func (g *Graph) verifyAcyclic() error {
	state := map[*Node]int{}
	var cycle *Node
	var visit func(*Node) bool
	visit = func(n *Node) bool {
		switch state[n] {
		case 1:
			cycle = n
			return false
		case 2:
			return true
		}
		state[n] = 1
		for _, p := range g.forwardInputs(n) {
			if p.Dead {
				continue
			}
			if !visit(p) {
				return false
			}
		}
		state[n] = 2
		return true
	}
	for _, n := range g.Nodes {
		if n.Dead {
			continue
		}
		if !visit(n) {
			return fmt.Errorf("%s: forward-edge cycle through %s", g.Name, cycle)
		}
	}
	return nil
}
