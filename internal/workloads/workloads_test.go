package workloads

import (
	"testing"

	"spatial/internal/build"
	"spatial/internal/dataflow"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
)

func TestAllWorkloadsParse(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Parse(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestWorkloadStats(t *testing.T) {
	for _, w := range All() {
		funcs, lines, _ := w.Stats()
		if funcs < 2 {
			t.Errorf("%s: only %d functions", w.Name, funcs)
		}
		if lines < 20 {
			t.Errorf("%s: only %d lines", w.Name, lines)
		}
	}
}

func TestSomeWorkloadsHavePragmas(t *testing.T) {
	total := 0
	for _, w := range All() {
		_, _, pragmas := w.Stats()
		total += pragmas
	}
	if total < 5 {
		t.Errorf("only %d pragma annotations across the suite", total)
	}
}

func TestByName(t *testing.T) {
	if ByName("adpcm_e") == nil {
		t.Error("adpcm_e missing")
	}
	if ByName("nope") != nil {
		t.Error("unexpected workload")
	}
}

// TestWorkloadsCorrectAtAllLevels is the suite-wide differential test:
// every workload must produce the same checksum on the dataflow machine
// at every optimization level as the sequential interpreter.
func TestWorkloadsCorrectAtAllLevels(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Parse()
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			haveWant := false
			for _, level := range []opt.Level{opt.None, opt.Medium, opt.Full} {
				p, err := build.Compile(prog)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				if err := opt.OptimizeAt(p, level); err != nil {
					t.Fatalf("optimize(%v): %v", level, err)
				}
				if !haveWant {
					it := interp.New(p, memsys.PerfectConfig())
					res, err := it.Run(w.Entry, nil)
					if err != nil {
						t.Fatalf("interp: %v", err)
					}
					want = res.Value
					haveWant = true
				}
				res, err := dataflow.Run(p, w.Entry, nil, dataflow.DefaultConfig())
				if err != nil {
					t.Fatalf("dataflow(%v): %v", level, err)
				}
				if res.Value != want {
					t.Errorf("level %v: checksum %d, want %d", level, res.Value, want)
				}
			}
		})
	}
}

func TestPipelinedSubset(t *testing.T) {
	ws := PipelinedSubset()
	if len(ws) < 5 || len(ws) >= len(All()) {
		t.Errorf("pipelined subset size = %d", len(ws))
	}
	for _, w := range ws {
		if !w.Pipelined {
			t.Errorf("%s not marked pipelined", w.Name)
		}
	}
}
