// Package workloads holds the benchmark kernels used to reproduce the
// paper's evaluation. The paper compiled selected functions from
// MediaBench and SPECint'95 (Table 2); those suites are proprietary
// source trees we substitute with synthetic kernels of the same names
// that reproduce each benchmark family's *memory-access shape* — the
// property Figures 18 and 19 actually measure (redundant loads/stores,
// disjoint arrays, monotone induction stores, fixed dependence distances,
// pointer-based traversals, lookup tables). See DESIGN.md's substitution
// table.
package workloads

import (
	"fmt"
	"strings"

	"spatial/internal/cminor"
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the paper's Table 2 row.
	Name string
	// Source is the cMinor program text.
	Source string
	// Entry is the function the harness runs; it takes no arguments and
	// returns a checksum.
	Entry string
	// Pipelined marks kernels whose dominant loops the paper's Section 6
	// transformations apply to.
	Pipelined bool
}

// Parse parses and checks the workload.
func (w *Workload) Parse() (*cminor.Program, error) {
	prog, err := cminor.Parse(w.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	if err := cminor.Check(prog); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return prog, nil
}

// Stats returns Table 2 style counts: functions, source lines, and
// pragma occurrences.
func (w *Workload) Stats() (funcs, lines, pragmas int) {
	prog, err := w.Parse()
	if err != nil {
		return 0, 0, 0
	}
	for _, f := range prog.Funcs {
		if f.Body != nil {
			funcs++
			pragmas += len(f.Pragmas)
		}
	}
	for _, ln := range strings.Split(w.Source, "\n") {
		if strings.TrimSpace(ln) != "" {
			lines++
		}
	}
	return funcs, lines, pragmas
}

// All returns every workload in Table 2 order.
func All() []*Workload {
	return []*Workload{
		adpcmE, adpcmD, gsmE, gsmD, epicE, epicD,
		mpeg2E, mpeg2D, jpegE, jpegD, pegwitE, pegwitD,
		g721E, g721D, mesa,
		spec099go, spec124m88ksim, spec129compress, spec130li,
		spec132ijpeg, spec134perl, spec147vortex,
	}
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// PipelinedSubset returns the kernels whose dominant loops the Section 6
// transformations target — the interesting population for pipelining
// ablations.
func PipelinedSubset() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Pipelined {
			out = append(out, w)
		}
	}
	return out
}
