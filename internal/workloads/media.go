package workloads

// MediaBench-family kernels. Each mirrors the memory behaviour of its
// namesake: ADPCM's table-driven sample loop, GSM's LTP dot products,
// EPIC's strided wavelet filters, MPEG-2's blocked DCT, JPEG's
// quantization with constant tables, Pegwit's mixing passes, G.721's
// predictor update, and Mesa's matrix-vector transforms.

var adpcmE = &Workload{
	Name:      "adpcm_e",
	Entry:     "bench",
	Pipelined: true,
	Source: `
const int stepTable[16] = {7, 8, 9, 10, 11, 12, 13, 14,
                           16, 17, 19, 21, 23, 25, 28, 31};
const int indexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};
int pcm[256];
char code[256];

void genInput(void) {
  int i;
  int v = 0;
  for (i = 0; i < 256; i++) {
    v = v + ((i * 37) & 63) - 31;
    pcm[i] = v * 16;
  }
}

int encode(int n) {
  int valpred = 0;
  int index = 0;
  int i;
  for (i = 0; i < n; i++) {
    int val = pcm[i];
    int diff = val - valpred;
    int sign = 0;
    if (diff < 0) { sign = 8; diff = -diff; }
    int step = stepTable[index];
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
    step >>= 1;
    if (diff >= step) { delta |= 2; diff -= step; vpdiff += step; }
    step >>= 1;
    if (diff >= step) { delta |= 1; vpdiff += step; }
    if (sign) valpred -= vpdiff; else valpred += vpdiff;
    if (valpred > 32767) valpred = 32767;
    else if (valpred < -32768) valpred = -32768;
    delta |= sign;
    index += indexTable[delta & 7];
    if (index < 0) index = 0;
    if (index > 15) index = 15;
    code[i] = (char)delta;
  }
  return valpred;
}

int bench(void) {
  int i;
  int sum = 0;
  genInput();
  int last = encode(256);
  for (i = 0; i < 256; i++) sum += code[i];
  return sum * 31 + last;
}
`,
}

var adpcmD = &Workload{
	Name:      "adpcm_d",
	Entry:     "bench",
	Pipelined: true,
	Source: `
const int stepTable[16] = {7, 8, 9, 10, 11, 12, 13, 14,
                           16, 17, 19, 21, 23, 25, 28, 31};
const int indexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};
char code[256];
int out[256];

void genCode(void) {
  int i;
  for (i = 0; i < 256; i++) code[i] = (char)((i * 13 + 5) & 15);
}

void decode(int n) {
  int valpred = 0;
  int index = 0;
  int i;
  for (i = 0; i < n; i++) {
    int delta = code[i] & 15;
    int step = stepTable[index];
    int vpdiff = step >> 3;
    if (delta & 4) vpdiff += step;
    if (delta & 2) vpdiff += step >> 1;
    if (delta & 1) vpdiff += step >> 2;
    if (delta & 8) valpred -= vpdiff; else valpred += vpdiff;
    if (valpred > 32767) valpred = 32767;
    else if (valpred < -32768) valpred = -32768;
    index += indexTable[delta & 7];
    if (index < 0) index = 0;
    if (index > 15) index = 15;
    out[i] = valpred;
  }
}

int bench(void) {
  int i;
  int sum = 0;
  genCode();
  decode(256);
  for (i = 0; i < 256; i++) sum += out[i] >> 4;
  return sum;
}
`,
}

var gsmE = &Workload{
	Name:      "gsm_e",
	Entry:     "bench",
	Pipelined: true,
	Source: `
short din[200];
short dp[160];
short e[50];
int ltpGain;
int ltpLag;

void genSignal(void) {
  int i;
  for (i = 0; i < 200; i++) din[i] = (short)(((i * 29) & 255) - 128);
  for (i = 0; i < 160; i++) dp[i] = (short)(((i * 17) & 255) - 128);
}

/* Long-term-prediction cross correlation: the hot loop of gsm_e. */
int ltpSearch(short *d, short *prev, int n) {
  #pragma independent d prev
  int lag;
  int bestLag = 40;
  int bestCorr = -1;
  for (lag = 40; lag < 120; lag++) {
    int corr = 0;
    int k;
    for (k = 0; k < n; k++) {
      corr += d[k] * prev[k + 120 - lag];
    }
    if (corr > bestCorr) { bestCorr = corr; bestLag = lag; }
  }
  ltpGain = bestCorr;
  return bestLag;
}

void residual(short *d, short *prev, int lag, int n) {
  #pragma independent d prev
  int k;
  for (k = 0; k < n; k++) {
    e[k] = (short)(d[k] - (prev[k + 120 - lag] >> 1));
  }
}

int bench(void) {
  genSignal();
  ltpLag = ltpSearch(din, dp, 40);
  residual(din, dp, ltpLag, 40);
  int i;
  int sum = 0;
  for (i = 0; i < 40; i++) sum += e[i];
  return sum * 7 + ltpLag + (ltpGain & 1023);
}
`,
}

var gsmD = &Workload{
	Name:      "gsm_d",
	Entry:     "bench",
	Pipelined: true,
	Source: `
short erp[40];
short drp[160];

void genErp(void) {
  int i;
  for (i = 0; i < 40; i++) erp[i] = (short)(((i * 23) & 127) - 64);
  for (i = 0; i < 120; i++) drp[i] = (short)(((i * 11) & 127) - 64);
}

/* Long-term synthesis filtering: reconstruct drp[120..159] from the lag
   window — a loop-carried dependence at a dynamic distance. */
void ltpSynthesis(int lag, int gain) {
  int k;
  for (k = 0; k < 40; k++) {
    int pred = (gain * drp[120 + k - lag]) >> 2;
    drp[120 + k] = (short)(erp[k] + pred);
  }
}

int bench(void) {
  genErp();
  ltpSynthesis(60, 3);
  int i;
  int sum = 0;
  for (i = 120; i < 160; i++) sum += drp[i];
  return sum;
}
`,
}

var epicE = &Workload{
	Name:      "epic_e",
	Entry:     "bench",
	Pipelined: true,
	Source: `
int image[256];
int lo[128];
int hi[128];
int q[256];

void genImage(void) {
  int i;
  for (i = 0; i < 256; i++) image[i] = ((i * 7) & 255) - 100;
}

/* One level of the EPIC wavelet pyramid: strided reads, monotone writes
   into two disjoint bands. */
void analyze(int *src, int *lowBand, int *highBand, int n) {
  #pragma independent lowBand highBand
  #pragma independent src lowBand
  #pragma independent src highBand
  int i;
  for (i = 0; i < n; i++) {
    int a = src[2*i];
    int b = src[2*i+1];
    lowBand[i] = (a + b) >> 1;
    highBand[i] = a - b;
  }
}

/* Quantize both bands back into one output array. */
void quantize(int n) {
  int i;
  for (i = 0; i < n; i++) {
    q[i] = lo[i] >> 2;
    q[i + n] = hi[i] >> 3;
  }
}

int bench(void) {
  genImage();
  analyze(image, lo, hi, 128);
  quantize(128);
  int i;
  int sum = 0;
  for (i = 0; i < 256; i++) sum += q[i] * ((i & 3) + 1);
  return sum;
}
`,
}

var epicD = &Workload{
	Name:      "epic_d",
	Entry:     "bench",
	Pipelined: true,
	Source: `
int q[256];
int lo[128];
int hi[128];
int image[256];

void genQ(void) {
  int i;
  for (i = 0; i < 256; i++) q[i] = ((i * 5) & 63) - 32;
}

void dequantize(int n) {
  int i;
  for (i = 0; i < n; i++) {
    lo[i] = q[i] << 2;
    hi[i] = q[i + n] << 3;
  }
}

/* Inverse wavelet: reconstruct interleaved samples. */
void synthesize(int *lowBand, int *highBand, int *dst, int n) {
  #pragma independent lowBand highBand
  #pragma independent lowBand dst
  #pragma independent highBand dst
  int i;
  for (i = 0; i < n; i++) {
    int s = lowBand[i];
    int d = highBand[i];
    dst[2*i] = s + ((d + 1) >> 1);
    dst[2*i+1] = s - (d >> 1);
  }
}

int bench(void) {
  genQ();
  dequantize(128);
  synthesize(lo, hi, image, 128);
  int i;
  int sum = 0;
  for (i = 0; i < 256; i++) sum += image[i];
  return sum;
}
`,
}

var mpeg2E = &Workload{
	Name:      "mpeg2_e",
	Entry:     "bench",
	Pipelined: false,
	Source: `
int block[64];
int coef[64];
int ref[64];
int cur[64];

void genBlocks(void) {
  int i;
  for (i = 0; i < 64; i++) {
    cur[i] = (i * 3) & 255;
    ref[i] = ((i * 3 + 7) & 255);
  }
}

/* Motion-compensated difference. */
void diffBlock(void) {
  int i;
  for (i = 0; i < 64; i++) block[i] = cur[i] - ref[i];
}

/* Separable 8x8 transform (row pass then column pass), the fdct shape. */
void fdct(void) {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    int s = 0;
    for (j = 0; j < 8; j++) s += block[i*8 + j];
    for (j = 0; j < 8; j++) coef[i*8 + j] = block[i*8 + j] * 2 - (s >> 3);
  }
  for (j = 0; j < 8; j++) {
    int s = 0;
    for (i = 0; i < 8; i++) s += coef[i*8 + j];
    for (i = 0; i < 8; i++) coef[i*8 + j] = coef[i*8 + j] - (s >> 4);
  }
}

int quantBlock(int qscale) {
  int i;
  int nz = 0;
  for (i = 0; i < 64; i++) {
    int v = coef[i] / qscale;
    coef[i] = v;
    if (v) nz++;
  }
  return nz;
}

int bench(void) {
  genBlocks();
  diffBlock();
  fdct();
  int nz = quantBlock(3);
  int i;
  int sum = 0;
  for (i = 0; i < 64; i++) sum += coef[i] * (i + 1);
  return sum + nz * 1000;
}
`,
}

var mpeg2D = &Workload{
	Name:      "mpeg2_d",
	Entry:     "bench",
	Pipelined: false,
	Source: `
int coef[64];
int block[64];
int pred[64];
int recon[64];

void genCoef(void) {
  int i;
  for (i = 0; i < 64; i++) {
    coef[i] = ((i * 9) & 31) - 16;
    pred[i] = (i * 2) & 255;
  }
}

void idct(void) {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    int s = 0;
    for (j = 0; j < 8; j++) s += coef[i*8 + j];
    for (j = 0; j < 8; j++) block[i*8 + j] = coef[i*8 + j] * 2 + (s >> 3);
  }
}

/* Motion compensation + saturation: the add_block shape. */
void addBlock(void) {
  int i;
  for (i = 0; i < 64; i++) {
    int v = block[i] + pred[i];
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    recon[i] = v;
  }
}

int bench(void) {
  genCoef();
  idct();
  addBlock();
  int i;
  int sum = 0;
  for (i = 0; i < 64; i++) sum += recon[i] ^ (i & 7);
  return sum;
}
`,
}

var jpegE = &Workload{
	Name:      "jpeg_e",
	Entry:     "bench",
	Pipelined: true,
	Source: `
const int quantTable[64] = {
  16, 11, 10, 16, 24, 40, 51, 61,
  12, 12, 14, 19, 26, 58, 60, 55,
  14, 13, 16, 24, 40, 57, 69, 56,
  14, 17, 22, 29, 51, 87, 80, 62,
  18, 22, 37, 56, 68, 109, 103, 77,
  24, 35, 55, 64, 81, 104, 113, 92,
  49, 64, 78, 87, 103, 121, 120, 101,
  72, 92, 95, 98, 112, 100, 103, 99};
const int zigzag[64] = {
  0, 1, 8, 16, 9, 2, 3, 10,
  17, 24, 32, 25, 18, 11, 4, 5,
  12, 19, 26, 33, 40, 48, 41, 34,
  27, 20, 13, 6, 7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36,
  29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46,
  53, 60, 61, 54, 47, 55, 62, 63};
int dct[64];
int zz[64];

void genDct(void) {
  int i;
  for (i = 0; i < 64; i++) dct[i] = ((i * 31) & 511) - 256;
}

/* Quantize against the constant table, then reorder in zigzag sequence:
   immutable-table loads plus permuted stores. */
void quantZigzag(int *src, int *dst) {
  #pragma independent src dst
  int i;
  for (i = 0; i < 64; i++) {
    int v = src[i] / quantTable[i];
    dst[zigzag[i]] = v;
  }
}

int bench(void) {
  genDct();
  quantZigzag(dct, zz);
  int i;
  int sum = 0;
  int run = 0;
  for (i = 0; i < 64; i++) {
    if (zz[i] == 0) run++;
    else { sum += zz[i] + run; run = 0; }
  }
  return sum * 3 + run;
}
`,
}

var jpegD = &Workload{
	Name:      "jpeg_d",
	Entry:     "bench",
	Pipelined: true,
	Source: `
const int quantTable[64] = {
  16, 11, 10, 16, 24, 40, 51, 61,
  12, 12, 14, 19, 26, 58, 60, 55,
  14, 13, 16, 24, 40, 57, 69, 56,
  14, 17, 22, 29, 51, 87, 80, 62,
  18, 22, 37, 56, 68, 109, 103, 77,
  24, 35, 55, 64, 81, 104, 113, 92,
  49, 64, 78, 87, 103, 121, 120, 101,
  72, 92, 95, 98, 112, 100, 103, 99};
int zz[64];
int dct[64];
unsigned char pixels[64];

void genZz(void) {
  int i;
  for (i = 0; i < 64; i++) zz[i] = ((i * 13) & 31) - 16;
}

void dequant(void) {
  int i;
  for (i = 0; i < 64; i++) dct[i] = zz[i] * quantTable[i];
}

/* Range-limit to bytes, the jpeg idct output stage. */
void rangeLimit(void) {
  int i;
  for (i = 0; i < 64; i++) {
    int v = (dct[i] >> 3) + 128;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    pixels[i] = (unsigned char)v;
  }
}

int bench(void) {
  genZz();
  dequant();
  rangeLimit();
  int i;
  int sum = 0;
  for (i = 0; i < 64; i++) sum = sum * 3 + pixels[i];
  return sum;
}
`,
}

var pegwitE = &Workload{
	Name:      "pegwit_e",
	Entry:     "bench",
	Pipelined: false,
	Source: `
unsigned state[16];
unsigned msg[128];
unsigned ct[128];

void genMsg(void) {
  int i;
  for (i = 0; i < 128; i++) msg[i] = (unsigned)(i * 2654435761u);
  for (i = 0; i < 16; i++) state[i] = (unsigned)(i * 40503u + 17);
}

/* A sponge-like mixing round: sequential dependences through state. */
void mix(void) {
  int i;
  for (i = 0; i < 16; i++) {
    unsigned a = state[i];
    unsigned b = state[(i + 1) & 15];
    state[i] = ((a << 5) | (a >> 27)) ^ b ^ (unsigned)(i * 0x9e3779b9u);
  }
}

void encrypt(int n) {
  int i;
  for (i = 0; i < n; i++) {
    if ((i & 15) == 0) mix();
    ct[i] = msg[i] ^ state[i & 15];
  }
}

int bench(void) {
  genMsg();
  encrypt(128);
  int i;
  unsigned h = 0;
  for (i = 0; i < 128; i++) h = h * 31 + ct[i];
  return (int)(h & 0x7fffffff);
}
`,
}

var pegwitD = &Workload{
	Name:      "pegwit_d",
	Entry:     "bench",
	Pipelined: false,
	Source: `
unsigned state[16];
unsigned ct[128];
unsigned pt[128];

void genCt(void) {
  int i;
  for (i = 0; i < 128; i++) ct[i] = (unsigned)(i * 2246822519u + 3);
  for (i = 0; i < 16; i++) state[i] = (unsigned)(i * 40503u + 17);
}

void mix(void) {
  int i;
  for (i = 0; i < 16; i++) {
    unsigned a = state[i];
    unsigned b = state[(i + 1) & 15];
    state[i] = ((a << 5) | (a >> 27)) ^ b ^ (unsigned)(i * 0x9e3779b9u);
  }
}

void decrypt(int n) {
  int i;
  for (i = 0; i < n; i++) {
    if ((i & 15) == 0) mix();
    pt[i] = ct[i] ^ state[i & 15];
  }
}

int bench(void) {
  genCt();
  decrypt(128);
  int i;
  unsigned h = 0;
  for (i = 0; i < 128; i++) h = h * 33 + pt[i];
  return (int)(h & 0x7fffffff);
}
`,
}

var g721E = &Workload{
	Name:      "g721_e",
	Entry:     "bench",
	Pipelined: false,
	Source: `
int sr[2];
int dq[6];
int b[6];
int pcmIn[128];
char outCode[128];

void genPcm(void) {
  int i;
  for (i = 0; i < 128; i++) pcmIn[i] = (((i * 41) & 255) - 128) * 8;
}

/* The ADPCM predictor of G.721: a 6-tap adaptive FIR over a delay line,
   updated every sample (read-modify-write of small state arrays). */
int predict(void) {
  int i;
  int acc = 0;
  for (i = 0; i < 6; i++) acc += b[i] * dq[i];
  return acc >> 6;
}

void update(int d) {
  int i;
  for (i = 5; i > 0; i--) dq[i] = dq[i-1];
  dq[0] = d;
  for (i = 0; i < 6; i++) {
    if (d * dq[i] > 0) b[i] += 1; else b[i] -= 1;
    if (b[i] > 128) b[i] = 128;
    if (b[i] < -128) b[i] = -128;
  }
}

void encodeAll(int n) {
  int i;
  for (i = 0; i < n; i++) {
    int se = predict();
    int d = pcmIn[i] - se;
    int code = 0;
    if (d < 0) { code = 8; d = -d; }
    if (d > 255) code |= 4;
    if ((d & 255) > 127) code |= 2;
    if ((d & 127) > 63) code |= 1;
    outCode[i] = (char)code;
    update(pcmIn[i] - se);
  }
}

int bench(void) {
  genPcm();
  encodeAll(128);
  int i;
  int sum = 0;
  for (i = 0; i < 128; i++) sum = sum * 5 + outCode[i];
  return sum & 0x7fffffff;
}
`,
}

var g721D = &Workload{
	Name:      "g721_d",
	Entry:     "bench",
	Pipelined: false,
	Source: `
int dq[6];
int b[6];
char codes[128];
int pcmOut[128];

void genCodes(void) {
  int i;
  for (i = 0; i < 128; i++) codes[i] = (char)((i * 7 + 3) & 15);
}

int predict(void) {
  int i;
  int acc = 0;
  for (i = 0; i < 6; i++) acc += b[i] * dq[i];
  return acc >> 6;
}

void update(int d) {
  int i;
  for (i = 5; i > 0; i--) dq[i] = dq[i-1];
  dq[0] = d;
  for (i = 0; i < 6; i++) {
    if (d * dq[i] > 0) b[i] += 1; else b[i] -= 1;
    if (b[i] > 128) b[i] = 128;
    if (b[i] < -128) b[i] = -128;
  }
}

void decodeAll(int n) {
  int i;
  for (i = 0; i < n; i++) {
    int code = codes[i];
    int d = ((code & 3) << 6) + 32;
    if (code & 4) d += 256;
    if (code & 8) d = -d;
    int se = predict();
    pcmOut[i] = se + d;
    update(d);
  }
}

int bench(void) {
  genCodes();
  decodeAll(128);
  int i;
  int sum = 0;
  for (i = 0; i < 128; i++) sum += pcmOut[i] * ((i & 7) + 1);
  return sum;
}
`,
}

var mesa = &Workload{
	Name:      "mesa",
	Entry:     "bench",
	Pipelined: true,
	Source: `
int verts[192];   /* 64 vertices x 3 */
int xformed[192];
int zbuf[64];
int fb[64];
const int mat[12] = {2, 0, 0, 10,
                     0, 2, 0, 20,
                     0, 0, 1, 30};

void genVerts(void) {
  int i;
  for (i = 0; i < 192; i++) verts[i] = ((i * 19) & 127) - 64;
}

/* gl_xform_points3: matrix times every vertex — disjoint in/out arrays,
   perfectly pipelinable. */
void xformPoints(int *in, int *out, int n) {
  #pragma independent in out
  int i;
  for (i = 0; i < n; i++) {
    int x = in[i*3];
    int y = in[i*3+1];
    int z = in[i*3+2];
    out[i*3]   = mat[0]*x + mat[1]*y + mat[2]*z  + mat[3];
    out[i*3+1] = mat[4]*x + mat[5]*y + mat[6]*z  + mat[7];
    out[i*3+2] = mat[8]*x + mat[9]*y + mat[10]*z + mat[11];
  }
}

/* Depth-tested write, the fragment pipeline shape. */
void depthTest(int n) {
  int i;
  for (i = 0; i < n; i++) {
    int z = xformed[i*3+2];
    if (z < zbuf[i]) {
      zbuf[i] = z;
      fb[i] = xformed[i*3] & 255;
    }
  }
}

int bench(void) {
  int i;
  genVerts();
  for (i = 0; i < 64; i++) zbuf[i] = 1000;
  xformPoints(verts, xformed, 64);
  depthTest(64);
  int sum = 0;
  for (i = 0; i < 64; i++) sum += fb[i] + zbuf[i];
  return sum;
}
`,
}
