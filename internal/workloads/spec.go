package workloads

// SPECint'95-family kernels: pointer-heavy, control-heavy integer codes.
// 099.go's board scans, 124.m88ksim's dispatch loop, 129.compress's LZW
// hash table, 130.li's cons-cell heap, 132.ijpeg's sample convolution,
// 134.perl's string hashing, and 147.vortex's record stores.

var spec099go = &Workload{
	Name:      "099.go",
	Entry:     "bench",
	Pipelined: false,
	Source: `
char board[361]; /* 19x19 */
int libCount[361];

void setup(void) {
  int i;
  for (i = 0; i < 361; i++) {
    int v = (i * 2654435761u) >> 29;
    if (v < 3) board[i] = 1;        /* black */
    else if (v < 6) board[i] = 2;   /* white */
    else board[i] = 0;              /* empty */
  }
}

/* Count pseudo-liberties of every stone: neighbour reads with branchy
   control flow, the classic go-engine access shape. */
void liberties(void) {
  int r;
  int c;
  for (r = 0; r < 19; r++) {
    for (c = 0; c < 19; c++) {
      int idx = r * 19 + c;
      int n = 0;
      if (board[idx] == 0) { libCount[idx] = -1; continue; }
      if (r > 0) { if (board[idx - 19] == 0) n++; }
      if (r < 18) { if (board[idx + 19] == 0) n++; }
      if (c > 0) { if (board[idx - 1] == 0) n++; }
      if (c < 18) { if (board[idx + 1] == 0) n++; }
      libCount[idx] = n;
    }
  }
}

int score(void) {
  int i;
  int s = 0;
  for (i = 0; i < 361; i++) {
    if (board[i] == 1) s += libCount[i];
    else if (board[i] == 2) s -= libCount[i];
  }
  return s;
}

int bench(void) {
  setup();
  liberties();
  return score() + 1000;
}
`,
}

var spec124m88ksim = &Workload{
	Name:      "124.m88ksim",
	Entry:     "bench",
	Pipelined: false,
	Source: `
int regs[32];
unsigned prog[64];
int memory[64];

void loadProgram(void) {
  int i;
  /* op: 0 add, 1 sub, 2 load, 3 store, 4 shift */
  for (i = 0; i < 64; i++) {
    unsigned op = (unsigned)((i * 11) % 5);
    unsigned rd = (unsigned)((i * 7) & 31);
    unsigned rs = (unsigned)((i * 13) & 31);
    unsigned rt = (unsigned)((i * 3) & 31);
    prog[i] = (op << 24) | (rd << 16) | (rs << 8) | rt;
  }
  for (i = 0; i < 32; i++) regs[i] = i * 5 - 7;
  for (i = 0; i < 64; i++) memory[i] = i * 9;
}

/* The instruction-dispatch interpreter loop: dependent loads (fetch,
   register file, data memory) with branchy decode. */
int interpret(int steps) {
  int pc = 0;
  int count = 0;
  while (steps > 0) {
    unsigned insn = prog[pc];
    int op = (int)(insn >> 24) & 255;
    int rd = (int)(insn >> 16) & 31;
    int rs = (int)(insn >> 8) & 31;
    int rt = (int)insn & 31;
    if (op == 0) regs[rd] = regs[rs] + regs[rt];
    else if (op == 1) regs[rd] = regs[rs] - regs[rt];
    else if (op == 2) regs[rd] = memory[regs[rs] & 63];
    else if (op == 3) memory[regs[rs] & 63] = regs[rt];
    else regs[rd] = regs[rs] << (rt & 7);
    pc = (pc + 1) & 63;
    steps--;
    count++;
  }
  return count;
}

int bench(void) {
  loadProgram();
  int n = interpret(192);
  int i;
  int sum = 0;
  for (i = 0; i < 32; i++) sum += regs[i] ^ i;
  for (i = 0; i < 64; i++) sum += memory[i] & 255;
  return sum + n;
}
`,
}

var spec129compress = &Workload{
	Name:      "129.compress",
	Entry:     "bench",
	Pipelined: false,
	Source: `
unsigned char input[256];
int htab[512];
int codetab[512];
unsigned char output[256];

void genInput(void) {
  int i;
  for (i = 0; i < 256; i++) input[i] = (unsigned char)(((i * i) >> 3) & 15);
}

/* The LZW inner loop: hash probe, conditional insert — dependent
   loads/stores through a hash table. */
int compress(int n) {
  int i;
  int ent = input[0];
  int freeCode = 257;
  int outPos = 0;
  for (i = 1; i < n; i++) {
    int ch = input[i];
    int key = (ch << 9) ^ ent;
    int h = key & 511;
    int found = 0;
    int probes = 0;
    while (probes < 4) {
      if (htab[h] == key + 1) { found = 1; break; }
      if (htab[h] == 0) break;
      h = (h + 1) & 511;
      probes++;
    }
    if (found) {
      ent = codetab[h];
    } else {
      if (htab[h] == 0) {
        htab[h] = key + 1;
        codetab[h] = freeCode;
        freeCode++;
      }
      output[outPos] = (unsigned char)(ent & 255);
      outPos++;
      ent = ch;
    }
  }
  output[outPos] = (unsigned char)(ent & 255);
  outPos++;
  return outPos;
}

int bench(void) {
  genInput();
  int n = compress(256);
  int i;
  int sum = n * 1000;
  for (i = 0; i < n; i++) sum += output[i] * (i + 1);
  return sum;
}
`,
}

var spec130li = &Workload{
	Name:      "130.li",
	Entry:     "bench",
	Pipelined: false,
	Source: `
/* A cons-cell heap in parallel arrays: car/cdr chains are the lisp
   interpreter's dominant memory pattern. */
int car[256];
int cdr[256];
int freeList;

void initHeap(void) {
  int i;
  for (i = 0; i < 255; i++) cdr[i] = i + 1;
  cdr[255] = -1;
  freeList = 0;
}

int cons(int a, int d) {
  int cell = freeList;
  freeList = cdr[cell];
  car[cell] = a;
  cdr[cell] = d;
  return cell;
}

int buildList(int n) {
  int lst = -1;
  int i;
  for (i = n - 1; i >= 0; i--) lst = cons(i * 3, lst);
  return lst;
}

int sumList(int lst) {
  int s = 0;
  while (lst >= 0) {
    s += car[lst];
    lst = cdr[lst];
  }
  return s;
}

int reverseList(int lst) {
  int prev = -1;
  while (lst >= 0) {
    int next = cdr[lst];
    cdr[lst] = prev;
    prev = lst;
    lst = next;
  }
  return prev;
}

int bench(void) {
  initHeap();
  int lst = buildList(100);
  int s1 = sumList(lst);
  int rev = reverseList(lst);
  int s2 = sumList(rev);
  return s1 * 2 + s2 + rev;
}
`,
}

var spec132ijpeg = &Workload{
	Name:      "132.ijpeg",
	Entry:     "bench",
	Pipelined: true,
	Source: `
unsigned char src[400]; /* 20x20 */
unsigned char dst[400];
int hist[16];

void genImage(void) {
  int i;
  for (i = 0; i < 400; i++) src[i] = (unsigned char)((i * 37) & 255);
}

/* The 3x3 smoothing convolution of ijpeg's h2v2 downsample path:
   neighbourhood reads, disjoint output writes. */
void smooth(unsigned char *in, unsigned char *out) {
  #pragma independent in out
  int r;
  int c;
  for (r = 1; r < 19; r++) {
    for (c = 1; c < 19; c++) {
      int idx = r * 20 + c;
      int acc = in[idx] * 4
              + in[idx - 1] + in[idx + 1]
              + in[idx - 20] + in[idx + 20];
      out[idx] = (unsigned char)(acc >> 3);
    }
  }
}

void histogram(void) {
  int i;
  for (i = 0; i < 400; i++) hist[dst[i] >> 4]++;
}

int bench(void) {
  genImage();
  smooth(src, dst);
  histogram();
  int i;
  int sum = 0;
  for (i = 0; i < 16; i++) sum = sum * 7 + hist[i];
  return sum;
}
`,
}

var spec134perl = &Workload{
	Name:      "134.perl",
	Entry:     "bench",
	Pipelined: false,
	Source: `
char text[512];
int buckets[64];
int counts[64];

void genText(void) {
  int i;
  for (i = 0; i < 511; i++) {
    int v = (i * 31 + 7) & 31;
    if (v < 26) text[i] = (char)('a' + v);
    else text[i] = ' ';
  }
  text[511] = 0;
}

/* The hv_fetch shape: scan words, hash them, count in a small table. */
int hashWords(const char *s) {
  #pragma independent s buckets
  int i = 0;
  int words = 0;
  while (s[i]) {
    /* skip separators */
    while (s[i] == ' ') i++;
    if (!s[i]) break;
    unsigned h = 5381;
    while (s[i] && s[i] != ' ') {
      h = h * 33 + (unsigned)s[i];
      i++;
    }
    int b = (int)(h & 63);
    buckets[b] = (int)h;
    counts[b]++;
    words++;
  }
  return words;
}

int bench(void) {
  genText();
  int w = hashWords(text);
  int i;
  int sum = w * 100;
  for (i = 0; i < 64; i++) sum += counts[i] * (i + 1) + (buckets[i] & 15);
  return sum;
}
`,
}

var spec147vortex = &Workload{
	Name:      "147.vortex",
	Entry:     "bench",
	Pipelined: false,
	Source: `
/* An object store in parallel arrays: insert, index, and query records —
   vortex's transactional memory traffic. */
int ids[128];
int vals[128];
int links[128];
int index0[64];
int numRecs;

void dbInit(void) {
  int i;
  numRecs = 0;
  for (i = 0; i < 64; i++) index0[i] = -1;
}

void dbInsert(int id, int v) {
  int slot = numRecs;
  numRecs = numRecs + 1;
  ids[slot] = id;
  vals[slot] = v;
  int b = id & 63;
  links[slot] = index0[b];
  index0[b] = slot;
}

int dbLookup(int id) {
  int b = id & 63;
  int cur = index0[b];
  while (cur >= 0) {
    if (ids[cur] == id) return vals[cur];
    cur = links[cur];
  }
  return -1;
}

int bench(void) {
  dbInit();
  int i;
  for (i = 0; i < 128; i++) {
    dbInsert((i * 37) & 127, i * 11);
  }
  int sum = 0;
  for (i = 0; i < 128; i++) {
    int v = dbLookup(i);
    if (v >= 0) sum += v;
    else sum -= 1;
  }
  return sum + numRecs;
}
`,
}
