GO ?= go
FUZZTIME ?= 30s

.PHONY: all check fmt vet build test bench bench-go examples fuzz

all: check

# check is the tier-1 gate: formatting, vet, build, tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench measures simulator throughput on the baseline workload set at
# every optimization level and writes BENCH.json. BENCHARGS narrows or
# extends the sweep, e.g. BENCHARGS="-bench mesa,epic_e -benchtime 50ms".
BENCHARGS ?=
bench:
	$(GO) run ./cmd/experiments -exp bench -benchout BENCH.json $(BENCHARGS)

# bench-go compiles and runs every go-test benchmark once (the
# paper-table regeneration benchmarks; CI smoke).
bench-go:
	$(GO) test -bench=. -benchtime=1x ./...

# fuzz runs the differential fuzzer for a short budget: generated
# programs must match the interpreter oracle at every optimization
# level, clean and under injected faults.
fuzz:
	$(GO) test -fuzz=FuzzDifferential -fuzztime=$(FUZZTIME) -run '^$$' ./internal/difftest

examples:
	@for d in examples/*/; do \
		echo "== $$d =="; $(GO) run ./$$d || exit 1; \
	done
