GO ?= go

.PHONY: all check fmt vet build test bench examples

all: check

# check is the tier-1 gate: formatting, vet, build, tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

examples:
	@for d in examples/*/; do \
		echo "== $$d =="; $(GO) run ./$$d || exit 1; \
	done
