// Package spatial is a Go implementation of spatial computation: the
// CASH compiler (ASPLOS 2004) that translates C programs into Pegasus
// dataflow graphs executed directly as hardware-like circuits, together
// with the memory-access optimizations of "Optimizing Memory Accesses for
// Spatial Computation" — an SSA-based token network for memory
// dependences, predicate-driven redundancy elimination, and loop
// pipelining with token generators.
//
// The root package re-exports the high-level API from internal/core, so
// callers never import internal packages:
//
//	cp, err := spatial.Compile(src,
//	    spatial.WithLevel(spatial.OptFull),
//	    spatial.WithMemory(spatial.PaperMemory(2)))
//	res, err := cp.Run("bench", nil)
//	txt, err := cp.Dump("bench")
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-reproduction results.
package spatial

import (
	"spatial/internal/core"
	"spatial/internal/hw"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

// Option configures Compile (see core.Option).
type Option = core.Option

// Options is the deprecated struct-style configuration; it implements
// Option so legacy call sites keep compiling. Prefer WithLevel /
// WithPasses / WithMemory.
//
// Deprecated: use functional options.
type Options = core.Options

// Compiled is a compiled program (see core.Compiled).
type Compiled = core.Compiled

// Level selects an optimization preset.
type Level = opt.Level

// Passes holds per-pass toggles for WithPasses.
type Passes = opt.Options

// MemConfig describes a memory system for WithMemory.
type MemConfig = memsys.Config

// SimConfig configures a dataflow simulation (see Compiled.RunWith).
type SimConfig = core.SimConfig

// SimResult is the outcome of a dataflow simulation.
type SimResult = core.SimResult

// TraceConfig parameterizes trace collection for WithTrace /
// Compiled.RunTraced.
type TraceConfig = core.TraceConfig

// Trace is the cycle-timestamped event stream of a traced run: node
// firings, stall attribution, and memory events. It supports dynamic
// critical-path extraction (CriticalPath) and Chrome trace-event export
// (WriteChrome, viewable in about://tracing or Perfetto).
type Trace = core.Trace

// CritPath is a dynamic critical path through the executed dataflow
// graph, with cycles attributed per node kind and per token edge.
type CritPath = core.CritPath

// Optimization levels re-exported for convenience.
const (
	OptNone   = opt.None
	OptBasic  = opt.Basic
	OptMedium = opt.Medium
	OptFull   = opt.Full
)

// WithLevel selects an optimization preset.
func WithLevel(l Level) Option { return core.WithLevel(l) }

// WithPasses overrides the preset with explicit per-pass toggles.
func WithPasses(p Passes) Option { return core.WithPasses(p) }

// WithMemory selects the default memory system the program runs against.
func WithMemory(m MemConfig) Option { return core.WithMemory(m) }

// WithSim sets the full default simulator configuration.
func WithSim(s SimConfig) Option { return core.WithSim(s) }

// WithTrace sets the trace-collection configuration RunTraced uses.
func WithTrace(tc TraceConfig) Option { return core.WithTrace(tc) }

// LevelPasses returns the pass toggles a preset enables, as a starting
// point for WithPasses overrides.
func LevelPasses(l Level) Passes { return opt.LevelOptions(l) }

// PerfectMemory returns the idealized memory configuration.
func PerfectMemory() MemConfig { return core.PerfectMemory() }

// PaperMemory returns the realistic memory system of the paper's
// Section 7.3 with the given port count.
func PaperMemory(ports int) MemConfig { return core.PaperMemory(ports) }

// DefaultSim returns the default simulation configuration.
func DefaultSim() SimConfig { return core.DefaultSim() }

// DefaultTrace returns the default trace-collection configuration.
func DefaultTrace() TraceConfig { return core.DefaultTrace() }

// Compile parses, checks, builds, and optimizes a cMinor program.
func Compile(src string, opts ...Option) (*Compiled, error) {
	return core.CompileSource(src, opts...)
}

// HWReport is one function's hardware cost estimate (operator counts,
// gate-equivalent area, wiring).
type HWReport = hw.Report

// EstimateHardware reports the hardware cost of every function in a
// compiled program, per the paper's Section 7.4 methodology.
func EstimateHardware(c *Compiled) []*HWReport { return hw.EstimateProgram(c.Program) }

// FormatHardware renders hardware estimates as text.
func FormatHardware(rs []*HWReport) string { return hw.Format(rs) }

// Profile counts node firings during a profiled run.
type Profile = core.Profile

// Workload is one of the paper's benchmark kernels; its Source compiles
// with Compile and its Entry function takes no arguments.
type Workload = workloads.Workload

// Workloads returns the paper's benchmark suite (Table 2).
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName returns the named benchmark, or nil.
func WorkloadByName(name string) *Workload { return workloads.ByName(name) }
