// Package spatial is a Go implementation of spatial computation: the
// CASH compiler (ASPLOS 2004) that translates C programs into Pegasus
// dataflow graphs executed directly as hardware-like circuits, together
// with the memory-access optimizations of "Optimizing Memory Accesses for
// Spatial Computation" — an SSA-based token network for memory
// dependences, predicate-driven redundancy elimination, and loop
// pipelining with token generators.
//
// The root package re-exports the high-level API from internal/core:
//
//	cp, err := spatial.Compile(src, spatial.Options{Level: opt.Full})
//	res, err := cp.Run("bench", nil)
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-reproduction results.
package spatial

import (
	"spatial/internal/core"
	"spatial/internal/opt"
)

// Options configures compilation (see core.Options).
type Options = core.Options

// Compiled is a compiled program (see core.Compiled).
type Compiled = core.Compiled

// Optimization levels re-exported for convenience.
const (
	OptNone   = opt.None
	OptBasic  = opt.Basic
	OptMedium = opt.Medium
	OptFull   = opt.Full
)

// Compile parses, checks, builds, and optimizes a cMinor program.
func Compile(src string, o Options) (*Compiled, error) {
	return core.CompileSource(src, o)
}
