// Package spatial is a Go implementation of spatial computation: the
// CASH compiler (ASPLOS 2004) that translates C programs into Pegasus
// dataflow graphs executed directly as hardware-like circuits, together
// with the memory-access optimizations of "Optimizing Memory Accesses for
// Spatial Computation" — an SSA-based token network for memory
// dependences, predicate-driven redundancy elimination, and loop
// pipelining with token generators.
//
// The root package re-exports the high-level API from internal/core, so
// callers never import internal packages:
//
//	cp, err := spatial.Compile(src,
//	    spatial.WithLevel(spatial.OptFull),
//	    spatial.WithMemory(spatial.PaperMemory(2)))
//	res, err := cp.Run("bench", nil)
//	txt, err := cp.Dump("bench")
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-reproduction results.
package spatial

import (
	"time"

	"spatial/internal/core"
	"spatial/internal/hw"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/workloads"
)

// Option configures Compile (see core.Option).
type Option = core.Option

// Compiled is a compiled program (see core.Compiled).
type Compiled = core.Compiled

// Level selects an optimization preset.
type Level = opt.Level

// Passes holds per-pass toggles for WithPasses.
type Passes = opt.Options

// MemConfig describes a memory system for WithMemory.
type MemConfig = memsys.Config

// SimConfig configures a dataflow simulation (see Compiled.RunWith).
type SimConfig = core.SimConfig

// SimResult is the outcome of a dataflow simulation.
type SimResult = core.SimResult

// TraceConfig parameterizes trace collection for WithTrace /
// Compiled.RunTraced.
type TraceConfig = core.TraceConfig

// Trace is the cycle-timestamped event stream of a traced run: node
// firings, stall attribution, and memory events. It supports dynamic
// critical-path extraction (CriticalPath) and Chrome trace-event export
// (WriteChrome, viewable in about://tracing or Perfetto).
type Trace = core.Trace

// CritPath is a dynamic critical path through the executed dataflow
// graph, with cycles attributed per node kind and per token edge.
type CritPath = core.CritPath

// Error classes: every failure returned by Compile and the Run* methods
// matches exactly one of these under errors.Is, and no call panics — the
// facade recovers internal panics into ErrInternal-classed errors.
var (
	// ErrCompile classifies rejected source programs and invalid options.
	ErrCompile = core.ErrCompile
	// ErrSim classifies run-time failures: deadlock, livelock, detected
	// faults, cancellation, resource limits.
	ErrSim = core.ErrSim
	// ErrInternal classifies recovered panics and violated invariants —
	// bugs in this library, never the caller's fault.
	ErrInternal = core.ErrInternal
)

// DeadlockError is a diagnosed deadlock: the run stopped with tokens
// still owed, and Report names the blocked nodes and the wait cycle.
// Retrieve it with errors.As.
type DeadlockError = core.DeadlockError

// LivelockError is a run that exceeded its cycle budget without
// terminating; Report diagnoses what was still in flight.
type LivelockError = core.LivelockError

// StuckReport is the wait-for-graph diagnosis inside DeadlockError and
// LivelockError: blocked nodes, what each waits for, and the strongly
// connected component forming the cycle.
type StuckReport = core.StuckReport

// PanicError is a panic recovered at the facade, carried by an
// ErrInternal-classed error.
type PanicError = core.PanicError

// Fault is one planned perturbation of a run (drop/duplicate/delay a
// delivery, freeze a node, stretch or fail a memory response).
type Fault = core.Fault

// FaultPlan is a set of faults to inject during one run.
type FaultPlan = core.FaultPlan

// FaultInjector deterministically perturbs a run (see
// Compiled.RunFaulted).
type FaultInjector = core.FaultInjector

// FaultOp enumerates fault kinds.
type FaultOp = core.FaultOp

// Fault operations.
const (
	FaultDrop       = core.FaultDrop
	FaultDuplicate  = core.FaultDuplicate
	FaultDelay      = core.FaultDelay
	FaultFreeze     = core.FaultFreeze
	FaultMemStretch = core.FaultMemStretch
	FaultMemFail    = core.FaultMemFail
)

// NewInjector compiles a fault plan into an injector for RunFaulted.
func NewInjector(p FaultPlan) *FaultInjector { return core.NewInjector(p) }

// NewJitterInjector returns an injector of seeded random delays that a
// correct self-timed circuit must absorb without changing its result.
func NewJitterInjector(seed int64, rate float64, maxDelay int64) *FaultInjector {
	return core.NewJitterInjector(seed, rate, maxDelay)
}

// Optimization levels re-exported for convenience.
const (
	OptNone   = opt.None
	OptBasic  = opt.Basic
	OptMedium = opt.Medium
	OptFull   = opt.Full
)

// WithLevel selects an optimization preset.
func WithLevel(l Level) Option { return core.WithLevel(l) }

// WithPasses overrides the preset with explicit per-pass toggles.
func WithPasses(p Passes) Option { return core.WithPasses(p) }

// WithMemory selects the default memory system the program runs against.
func WithMemory(m MemConfig) Option { return core.WithMemory(m) }

// WithSim sets the full default simulator configuration.
func WithSim(s SimConfig) Option { return core.WithSim(s) }

// WithTrace sets the trace-collection configuration RunTraced uses.
func WithTrace(tc TraceConfig) Option { return core.WithTrace(tc) }

// WithDeadline bounds every Run of the compiled program by a wall-clock
// duration; a run past it aborts with an ErrSim-classed error.
func WithDeadline(d time.Duration) Option { return core.WithDeadline(d) }

// LevelPasses returns the pass toggles a preset enables, as a starting
// point for WithPasses overrides.
func LevelPasses(l Level) Passes { return opt.LevelOptions(l) }

// PerfectMemory returns the idealized memory configuration.
func PerfectMemory() MemConfig { return core.PerfectMemory() }

// PaperMemory returns the realistic memory system of the paper's
// Section 7.3 with the given port count.
func PaperMemory(ports int) MemConfig { return core.PaperMemory(ports) }

// DefaultSim returns the default simulation configuration.
func DefaultSim() SimConfig { return core.DefaultSim() }

// DefaultTrace returns the default trace-collection configuration.
func DefaultTrace() TraceConfig { return core.DefaultTrace() }

// Compile parses, checks, builds, and optimizes a cMinor program.
func Compile(src string, opts ...Option) (*Compiled, error) {
	return core.CompileSource(src, opts...)
}

// HWReport is one function's hardware cost estimate (operator counts,
// gate-equivalent area, wiring).
type HWReport = hw.Report

// EstimateHardware reports the hardware cost of every function in a
// compiled program, per the paper's Section 7.4 methodology.
func EstimateHardware(c *Compiled) []*HWReport { return hw.EstimateProgram(c.Program) }

// FormatHardware renders hardware estimates as text.
func FormatHardware(rs []*HWReport) string { return hw.Format(rs) }

// Profile counts node firings during a profiled run.
type Profile = core.Profile

// Workload is one of the paper's benchmark kernels; its Source compiles
// with Compile and its Entry function takes no arguments.
type Workload = workloads.Workload

// Workloads returns the paper's benchmark suite (Table 2).
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName returns the named benchmark, or nil.
func WorkloadByName(name string) *Workload { return workloads.ByName(name) }
