// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-relevant metrics (memory ops removed,
// cycles, speedups) via b.ReportMetric, so `go test -bench` output doubles
// as the experiment log.
package spatial_test

import (
	"testing"

	"spatial/internal/build"
	"spatial/internal/dataflow"
	"spatial/internal/harness"
	"spatial/internal/interp"
	"spatial/internal/memsys"
	"spatial/internal/opt"
	"spatial/internal/pegasus"
	"spatial/internal/workloads"
)

// benchSet is the representative subset used by the per-figure
// benchmarks (the full 22-program sweep lives in cmd/experiments).
var benchSet = []string{"adpcm_e", "epic_e", "g721_e", "mesa", "129.compress"}

func benchWorkloads(b *testing.B) []*workloads.Workload {
	b.Helper()
	var ws []*workloads.Workload
	for _, name := range benchSet {
		w := workloads.ByName(name)
		if w == nil {
			b.Fatalf("missing workload %s", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// BenchmarkSection2Example regenerates the Section 2 compiler comparison:
// compiling the motivating example and counting residual memory ops.
func BenchmarkSection2Example(b *testing.B) {
	const src = `
void f(unsigned *p, unsigned a[], int i) {
  if (p) a[i] += *p;
  else a[i] = 1;
  a[i] <<= a[i+1];
}`
	var loads, stores int
	for i := 0; i < b.N; i++ {
		prog, err := parseAndBuild(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.OptimizeAt(prog, opt.Full); err != nil {
			b.Fatal(err)
		}
		loads, stores = 0, 0
		for _, g := range prog.Funcs {
			l, s := g.CountMemOps()
			loads += l
			stores += s
		}
	}
	b.ReportMetric(float64(loads), "loads")
	b.ReportMetric(float64(stores), "stores")
}

// BenchmarkTable1LOC regenerates Table 1 (implementation compactness).
func BenchmarkTable1LOC(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1("internal/opt")
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.LOC
		}
	}
	b.ReportMetric(float64(total), "total-LOC")
}

// BenchmarkTable2Stats regenerates the Table 2 program statistics.
func BenchmarkTable2Stats(b *testing.B) {
	ws := benchWorkloads(b)
	var lines int
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(ws)
		if err != nil {
			b.Fatal(err)
		}
		lines = 0
		for _, r := range rows {
			lines += r.Lines
		}
	}
	b.ReportMetric(float64(lines), "src-lines")
}

// BenchmarkFig18 regenerates the Figure 18 memory-operation reductions on
// the representative subset.
func BenchmarkFig18(b *testing.B) {
	ws := benchWorkloads(b)
	var staticRemoved, dynRemoved float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig18(ws)
		if err != nil {
			b.Fatal(err)
		}
		staticRemoved, dynRemoved = 0, 0
		for _, r := range rows {
			staticRemoved += float64(r.StaticLoads0 - r.StaticLoads1 + r.StaticStore0 - r.StaticStore1)
			dynRemoved += float64(r.DynMem0 - r.DynMem1)
		}
	}
	b.ReportMetric(staticRemoved, "static-removed")
	b.ReportMetric(dynRemoved, "dyn-removed")
}

// BenchmarkFig19 regenerates the Figure 19 sweep per benchmark, level,
// and memory system; the speedup metric is the figure's y axis.
func BenchmarkFig19(b *testing.B) {
	for _, name := range benchSet {
		w := workloads.ByName(name)
		for _, level := range []opt.Level{opt.None, opt.Medium, opt.Full} {
			for _, mem := range []memsys.Config{memsys.PerfectConfig(), memsys.PaperConfig(2)} {
				b.Run(name+"/"+level.String()+"/"+mem.String(), func(b *testing.B) {
					var cycles int64
					for i := 0; i < b.N; i++ {
						rows, err := harness.Fig19([]*workloads.Workload{w},
							[]opt.Level{level}, []memsys.Config{mem})
						if err != nil {
							b.Fatal(err)
						}
						cycles = rows[0].Cycles
					}
					b.ReportMetric(float64(cycles), "cycles")
				})
			}
		}
	}
}

// BenchmarkAblation regenerates the Section 7.3 knockout study on one
// pipelining-sensitive kernel (the first of the Section 6 subset).
func BenchmarkAblation(b *testing.B) {
	w := workloads.PipelinedSubset()[0]
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Ablation([]*workloads.Workload{w})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.SlowdownPct > worst {
				worst = r.SlowdownPct
			}
		}
	}
	b.ReportMetric(worst, "worst-slowdown-%")
}

// BenchmarkSpatialVsSeq regenerates the ASPLOS'04 headline comparison.
func BenchmarkSpatialVsSeq(b *testing.B) {
	ws := benchWorkloads(b)
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.SpatialVsSeq(ws, opt.Full)
		if err != nil {
			b.Fatal(err)
		}
		geo = 1
		for _, r := range rows {
			geo *= r.Speedup
		}
	}
	b.ReportMetric(geo, "speedup-product")
}

// BenchmarkCompile measures compiler throughput (the paper's Section 7.1
// discusses CASH's compile time).
func BenchmarkCompile(b *testing.B) {
	w := workloads.ByName("mesa")
	for i := 0; i < b.N; i++ {
		prog, err := w.Parse()
		if err != nil {
			b.Fatal(err)
		}
		p, err := build.Compile(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.OptimizeAt(p, opt.Full); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures dataflow simulator throughput.
func BenchmarkSimulate(b *testing.B) {
	w := workloads.ByName("adpcm_e")
	prog, err := w.Parse()
	if err != nil {
		b.Fatal(err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	if err := opt.OptimizeAt(p, opt.Full); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := dataflow.Run(p, w.Entry, nil, dataflow.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkInterpret measures the sequential baseline's throughput.
func BenchmarkInterpret(b *testing.B) {
	w := workloads.ByName("adpcm_e")
	prog, err := w.Parse()
	if err != nil {
		b.Fatal(err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := interp.New(p, memsys.PerfectConfig())
		if _, err := it.Run(w.Entry, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeCapAblation measures the DESIGN.md edge-buffer-depth
// ablation: one-place wires versus two-deep buffering.
func BenchmarkEdgeCapAblation(b *testing.B) {
	w := workloads.ByName("epic_e")
	prog, err := w.Parse()
	if err != nil {
		b.Fatal(err)
	}
	p, err := build.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	if err := opt.OptimizeAt(p, opt.Full); err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{1, 2, 4} {
		cap := cap
		b.Run(capName(cap), func(b *testing.B) {
			cfg := dataflow.DefaultConfig()
			cfg.EdgeCap = cap
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := dataflow.Run(p, w.Entry, nil, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

func capName(c int) string {
	return "cap" + string(rune('0'+c))
}

func parseAndBuild(src string) (*pegasus.Program, error) {
	w := &workloads.Workload{Name: "inline", Source: src, Entry: "f"}
	prog, err := w.Parse()
	if err != nil {
		return nil, err
	}
	return build.Compile(prog)
}
