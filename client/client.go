// Package client is the Go client for cashd, the network-facing
// simulation service. It speaks the versioned wire contract of package
// spatial/api and adds the client-side half of the service's operational
// behavior:
//
//   - Retries with exponential backoff when the daemon sheds load
//     (HTTP 429), honoring the server's Retry-After hint when present.
//   - Context deadlines: the request context bounds every attempt
//     including backoff sleeps, and a context error is reported as an
//     api.Error with ClassDeadline.
//   - Shard routing: with several peers configured, each program is sent
//     to the peer that owns its key on the shared consistent-hash ring,
//     and batches are partitioned per owner then reassembled in request
//     order. A daemon's 307 redirects are followed as a fallback, so an
//     out-of-date peer list still reaches the right shard — routing is a
//     fast path, not a correctness requirement.
//
// Typed failures surface as *api.Error; inspect .Class or call
// .Temporary() to decide whether to retry at a higher level.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"spatial/api"
)

// Config parameterizes a Client. The zero value of every field selects
// a sensible default.
type Config struct {
	// Peers is the daemon set, as base URLs. One peer means no routing;
	// several mean consistent-hash routing by program key. Required.
	Peers []string
	// HTTPClient overrides the transport; nil means a dedicated client
	// with no overall timeout (use request contexts for deadlines).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after an overload shed; 0 means 4.
	// Only temporary errors (429 overload, 503 closed) are retried.
	MaxRetries int
	// BaseBackoff is the first retry's backoff; it doubles per attempt.
	// 0 means 50ms. A server Retry-After hint overrides the schedule.
	BaseBackoff time.Duration
}

// Client is a cashd client; it is safe for concurrent use.
type Client struct {
	cfg  Config
	ring *api.Ring
	http *http.Client
}

// New builds a client for the given daemon set.
func New(cfg Config) (*Client, error) {
	ring := api.NewRing(cfg.Peers, 0)
	if ring == nil {
		return nil, fmt.Errorf("client: no peers configured")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, ring: ring, http: hc}, nil
}

// owner returns the peer that owns p's slice of the key space.
func (c *Client) owner(p api.Program) string { return c.ring.Owner(p.Key()) }

// Compile compiles (and caches) a program on its owning shard without
// running it.
func (c *Client) Compile(ctx context.Context, p api.CompileRequest) (*api.CompileResponse, error) {
	var out api.CompileResponse
	if err := c.post(ctx, c.owner(p), "/"+api.Version+"/compile", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Run executes one simulation on the program's owning shard.
func (c *Client) Run(ctx context.Context, r api.RunRequest) (*api.RunResponse, error) {
	var out api.RunResponse
	if err := c.post(ctx, c.owner(r.Program), "/"+api.Version+"/run", r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch executes many simulations, partitioned across shards by each
// program's owner and reassembled in request order. A sub-batch that
// fails wholesale (transport error, rejected request) marks each of its
// items with the failure rather than failing the whole call.
func (c *Client) Batch(ctx context.Context, b api.BatchRequest) (*api.BatchResponse, error) {
	if len(b.Runs) == 0 {
		return &api.BatchResponse{Results: []api.BatchItem{}}, nil
	}
	// Partition run indices by owning peer, preserving relative order.
	parts := make(map[string][]int)
	for i, rr := range b.Runs {
		o := c.owner(rr.Program)
		parts[o] = append(parts[o], i)
	}
	results := make([]api.BatchItem, len(b.Runs))
	var wg sync.WaitGroup
	for peer, idxs := range parts {
		wg.Add(1)
		go func(peer string, idxs []int) {
			defer wg.Done()
			sub := api.BatchRequest{Runs: make([]api.RunRequest, len(idxs))}
			for j, i := range idxs {
				sub.Runs[j] = b.Runs[i]
			}
			var out api.BatchResponse
			err := c.post(ctx, peer, "/"+api.Version+"/batch", sub, &out)
			if err == nil && len(out.Results) != len(idxs) {
				err = &api.Error{Class: api.ClassInternal,
					Message: fmt.Sprintf("client: peer %s returned %d results for %d runs", peer, len(out.Results), len(idxs))}
			}
			for j, i := range idxs {
				if err != nil {
					results[i] = api.BatchItem{Err: wireError(err)}
					continue
				}
				results[i] = out.Results[j]
			}
		}(peer, idxs)
	}
	wg.Wait()
	return &api.BatchResponse{Results: results}, nil
}

// Trace downloads a recorded Chrome trace into w. The trace store is
// per-daemon and the ID does not encode its owner, so each peer is asked
// in turn; a 404 everywhere reports not_found.
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) error {
	var lastErr error
	for _, peer := range c.ring.Nodes() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/"+api.Version+"/trace/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = ctxError(ctx, err)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			_, err = io.Copy(w, resp.Body)
			resp.Body.Close()
			return err
		}
		lastErr = decodeError(resp)
		resp.Body.Close()
	}
	if lastErr == nil {
		lastErr = &api.Error{Class: api.ClassNotFound, Message: "client: no trace " + id}
	}
	return lastErr
}

// Health checks every peer's liveness endpoint and reports the peers
// that failed, if any.
func (c *Client) Health(ctx context.Context) error {
	var down []string
	for _, peer := range c.ring.Nodes() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			down = append(down, fmt.Sprintf("%s: %v", peer, err))
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			down = append(down, fmt.Sprintf("%s: status %d", peer, resp.StatusCode))
		}
	}
	if len(down) > 0 {
		return fmt.Errorf("client: unhealthy peers: %s", strings.Join(down, "; "))
	}
	return nil
}

// post sends one JSON request with the retry/backoff loop. Temporary
// failures (overload, closed) are retried up to MaxRetries times with
// exponential backoff, honoring a server Retry-After hint; all sleeps
// respect ctx.
func (c *Client) post(ctx context.Context, peer, path string, body, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	backoff := c.cfg.BaseBackoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		// GetBody lets the transport replay the body across the daemon's
		// 307 shard redirects.
		req.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return ctxError(ctx, err)
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			return err
		}
		apiErr := decodeError(resp)
		resp.Body.Close()
		if !apiErr.Temporary() || attempt >= c.cfg.MaxRetries {
			return apiErr
		}
		wait := backoff
		if apiErr.RetryAfterMS > 0 {
			wait = time.Duration(apiErr.RetryAfterMS) * time.Millisecond
		}
		backoff *= 2
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctxError(ctx, ctx.Err())
		case <-t.C:
		}
	}
}

// decodeError turns a non-200 response into a *api.Error, synthesizing
// one from the status when the body is not a typed error (a proxy's
// plain-text 502, say).
func decodeError(resp *http.Response) *api.Error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var e api.Error
	if err := json.Unmarshal(body, &e); err == nil && e.Class != "" {
		if e.Status == 0 {
			e.Status = resp.StatusCode
		}
		return &e
	}
	return &api.Error{
		Class:   api.ClassForStatus(resp.StatusCode),
		Message: fmt.Sprintf("client: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
		Status:  resp.StatusCode,
	}
}

// ctxError prefers the context's own story over the transport's wrapped
// version of it, and types it for callers.
func ctxError(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return &api.Error{Class: api.ClassDeadline, Message: ctx.Err().Error(), Status: api.ClassDeadline.HTTPStatus()}
	}
	return err
}

// wireError coerces any error into the typed wire form for batch items.
func wireError(err error) *api.Error {
	var e *api.Error
	if errors.As(err, &e) {
		return e
	}
	return &api.Error{Class: api.ClassInternal, Message: err.Error(), Status: api.ClassInternal.HTTPStatus()}
}
