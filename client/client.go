// Package client is the Go client for cashd, the network-facing
// simulation service. It speaks the versioned wire contract of package
// spatial/api and adds the client-side half of the service's operational
// behavior:
//
//   - Retries with exponential backoff when the daemon sheds load
//     (HTTP 429), honoring the server's Retry-After hint when present.
//     Backoff is capped at MaxBackoff and jittered ±20% so synchronized
//     clients de-correlate.
//   - Context deadlines: the request context bounds every attempt
//     including backoff sleeps, and a context error is reported as an
//     api.Error with ClassDeadline.
//   - Shard routing: with several peers configured, each program is sent
//     to the peer that owns its key on the shared consistent-hash ring,
//     and batches are partitioned per owner then reassembled in request
//     order. A daemon's 307 redirects are followed as a fallback, so an
//     out-of-date peer list still reaches the right shard — routing is a
//     fast path, not a correctness requirement.
//   - Peer failover: each peer has a circuit breaker (closed/open/
//     half-open over a sliding failure-rate window). When a peer is
//     unreachable, resets the connection, or answers 5xx, the request
//     walks the ring to the next live owner — carrying api.HeaderFailover
//     so the substitute serves instead of redirecting back to the dead
//     primary. One dead daemon costs 1/N capacity, not a hung key range.
//   - Hedged reads: with Config.Hedge set, a Run that has not answered
//     after a p99-based delay is raced against the next live peer; the
//     first answer wins and the loser is canceled.
//
// Typed failures surface as *api.Error; inspect .Class or call
// .Temporary() to decide whether to retry at a higher level. Transport
// failures (connection refused/reset, malformed bodies) are typed as
// ClassUnavailable rather than leaking raw transport errors.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"spatial/api"
)

// Config parameterizes a Client. The zero value of every field selects
// a sensible default.
type Config struct {
	// Peers is the daemon set, as base URLs. One peer means no routing;
	// several mean consistent-hash routing by program key. Required.
	Peers []string
	// HTTPClient overrides the transport; nil means a dedicated client
	// with no overall timeout (use request contexts for deadlines).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after a retriable failure; 0
	// means 4. Overload sheds back off on the same peer; peer faults
	// (unreachable, 5xx) fail over to the next live owner immediately.
	MaxRetries int
	// BaseBackoff is the first retry's backoff; it doubles per attempt.
	// 0 means 50ms. A server Retry-After hint overrides the schedule.
	BaseBackoff time.Duration
	// MaxBackoff caps every backoff sleep, including a server
	// Retry-After hint; 0 means 1s. Each sleep is jittered ±20%
	// deterministically by attempt index.
	MaxBackoff time.Duration
	// Breaker tunes the per-peer circuit breakers.
	Breaker BreakerConfig
	// Hedge enables hedged Run reads: if the primary has not answered
	// after HedgeDelay, a duplicate is raced to the next live peer.
	Hedge bool
	// HedgeDelay is the hedging trigger; 0 means adaptive (the observed
	// p99 of recent successful requests, 50ms until enough samples).
	HedgeDelay time.Duration
}

// Client is a cashd client; it is safe for concurrent use.
type Client struct {
	cfg  Config
	ring *api.Ring
	http *http.Client
	now  func() time.Time

	bmu      sync.Mutex
	breakers map[string]*breaker

	latMu  sync.Mutex
	lats   []time.Duration // ring buffer of recent successful latencies
	latIdx int
	latN   int
}

// New builds a client for the given daemon set.
func New(cfg Config) (*Client, error) {
	ring := api.NewRing(cfg.Peers, 0)
	if ring == nil {
		return nil, fmt.Errorf("client: no peers configured")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Client{
		cfg:      cfg,
		ring:     ring,
		http:     hc,
		now:      time.Now,
		breakers: make(map[string]*breaker),
		lats:     make([]time.Duration, 128),
	}
	for _, p := range ring.Nodes() {
		c.breakers[p] = newBreaker(cfg.Breaker, c.now)
	}
	return c, nil
}

// owner returns the peer that owns p's slice of the key space.
func (c *Client) owner(p api.Program) string { return c.ring.Owner(p.Key()) }

// candidates returns p's full failover sequence: the owning peer first,
// then the ring walk every client agrees on.
func (c *Client) candidates(p api.Program) []string {
	return c.ring.Owners(p.Key(), len(c.ring.Nodes()))
}

// candidatesFor builds a failover sequence led by an explicit primary
// (used by Batch, whose sub-batches are grouped by owner).
func (c *Client) candidatesFor(primary string) []string {
	out := []string{primary}
	for _, p := range c.ring.Nodes() {
		if p != primary {
			out = append(out, p)
		}
	}
	return out
}

func (c *Client) breakerFor(peer string) *breaker {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	b, ok := c.breakers[peer]
	if !ok {
		b = newBreaker(c.cfg.Breaker, c.now)
		c.breakers[peer] = b
	}
	return b
}

// Compile compiles (and caches) a program on its owning shard without
// running it.
func (c *Client) Compile(ctx context.Context, p api.CompileRequest) (*api.CompileResponse, error) {
	var out api.CompileResponse
	if err := c.post(ctx, c.candidates(p), "/"+api.Version+"/compile", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Run executes one simulation on the program's owning shard, hedging to
// the next live peer when configured.
func (c *Client) Run(ctx context.Context, r api.RunRequest) (*api.RunResponse, error) {
	var out api.RunResponse
	if err := c.hedgedPost(ctx, c.candidates(r.Program), "/"+api.Version+"/run", r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch executes many simulations, partitioned across shards by each
// program's owner and reassembled in request order. A sub-batch that
// fails wholesale (transport error, rejected request) marks each of its
// items with the failure rather than failing the whole call.
func (c *Client) Batch(ctx context.Context, b api.BatchRequest) (*api.BatchResponse, error) {
	if len(b.Runs) == 0 {
		return &api.BatchResponse{Results: []api.BatchItem{}}, nil
	}
	// Partition run indices by owning peer, preserving relative order.
	parts := make(map[string][]int)
	for i, rr := range b.Runs {
		o := c.owner(rr.Program)
		parts[o] = append(parts[o], i)
	}
	results := make([]api.BatchItem, len(b.Runs))
	var wg sync.WaitGroup
	for peer, idxs := range parts {
		wg.Add(1)
		go func(peer string, idxs []int) {
			defer wg.Done()
			sub := api.BatchRequest{Runs: make([]api.RunRequest, len(idxs))}
			for j, i := range idxs {
				sub.Runs[j] = b.Runs[i]
			}
			var out api.BatchResponse
			err := c.post(ctx, c.candidatesFor(peer), "/"+api.Version+"/batch", sub, &out)
			if err == nil && len(out.Results) != len(idxs) {
				err = &api.Error{Class: api.ClassInternal,
					Message: fmt.Sprintf("client: peer %s returned %d results for %d runs", peer, len(out.Results), len(idxs))}
			}
			for j, i := range idxs {
				if err != nil {
					results[i] = api.BatchItem{Err: wireError(err)}
					continue
				}
				results[i] = out.Results[j]
			}
		}(peer, idxs)
	}
	wg.Wait()
	return &api.BatchResponse{Results: results}, nil
}

// Trace downloads a recorded Chrome trace into w. The trace store is
// per-daemon and the ID does not encode its owner, so each peer is asked
// in turn; a 404 everywhere reports not_found.
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) error {
	var lastErr error
	for _, peer := range c.ring.Nodes() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/"+api.Version+"/trace/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = ctxError(ctx, err)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			_, err = io.Copy(w, resp.Body)
			resp.Body.Close()
			return err
		}
		lastErr = decodeError(resp)
		drainBody(resp.Body)
		resp.Body.Close()
	}
	if lastErr == nil {
		lastErr = &api.Error{Class: api.ClassNotFound, Message: "client: no trace " + id}
	}
	return lastErr
}

// PeerHealth is one peer's health-check result.
type PeerHealth struct {
	Peer    string        `json:"peer"`
	OK      bool          `json:"ok"`
	Latency time.Duration `json:"latency"`
	// Err describes the failure when OK is false.
	Err string `json:"error,omitempty"`
	// Breaker is the peer's circuit state after the check:
	// "closed", "open", or "half-open".
	Breaker string `json:"breaker"`
}

// HealthReport is the typed result of Health: one entry per peer, in
// ring (sorted) order.
type HealthReport struct {
	Peers []PeerHealth `json:"peers"`
}

// Down returns the unhealthy peers.
func (r *HealthReport) Down() []PeerHealth {
	var out []PeerHealth
	for _, p := range r.Peers {
		if !p.OK {
			out = append(out, p)
		}
	}
	return out
}

// Health checks every peer's liveness endpoint. It returns the full
// per-peer report, plus a non-nil error naming the down peers when any
// check failed (so existing callers that only look at the error keep
// working). Outcomes feed the circuit breakers: a healthy check closes
// a peer's breaker, a failed one opens it.
func (c *Client) Health(ctx context.Context) (*HealthReport, error) {
	rep := &HealthReport{}
	var down []string
	for _, peer := range c.ring.Nodes() {
		ph := PeerHealth{Peer: peer}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
		if err != nil {
			return nil, err
		}
		start := c.now()
		resp, err := c.http.Do(req)
		ph.Latency = c.now().Sub(start)
		if err != nil {
			ph.Err = err.Error()
		} else {
			drainBody(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				ph.Err = fmt.Sprintf("status %d", resp.StatusCode)
			} else {
				ph.OK = true
			}
		}
		b := c.breakerFor(peer)
		b.observeHealth(ph.OK)
		ph.Breaker = b.stateName()
		rep.Peers = append(rep.Peers, ph)
		if !ph.OK {
			down = append(down, fmt.Sprintf("%s: %s", peer, ph.Err))
		}
	}
	if len(down) > 0 {
		return rep, fmt.Errorf("client: unhealthy peers: %s", strings.Join(down, "; "))
	}
	return rep, nil
}

// pickPeer walks the preference sequence and returns the first peer
// whose breaker admits a request and that has not already faulted during
// this call, plus whether the admission holds that peer's half-open
// probe slot. When everything is excluded it falls back to the primary:
// while peers exist the client always probes rather than refusing — but
// a fallback attempt does not own a probe slot, and its outcome must
// not move the refused breaker (probe=false).
func (c *Client) pickPeer(cands []string, skip map[string]bool) (peer string, probe bool) {
	for _, p := range cands {
		if skip[p] {
			continue
		}
		if ok, probe := c.breakerFor(p).allow(); ok {
			return p, probe
		}
	}
	return cands[0], false
}

// post sends one JSON request with the retry/failover loop. Overload
// sheds back off (capped, jittered, honoring Retry-After) and retry;
// peer faults (unreachable, reset, 5xx, malformed body) mark the peer in
// its breaker and fail over to the next candidate without sleeping.
// Permanent errors (compile, sim, bad request) return immediately. All
// sleeps respect ctx.
func (c *Client) post(ctx context.Context, cands []string, path string, body, out any) error {
	if len(cands) == 0 {
		return &api.Error{Class: api.ClassUnavailable, Message: "client: no peers for key",
			Status: api.ClassUnavailable.HTTPStatus()}
	}
	return c.postAs(ctx, cands, cands[0], path, body, out)
}

// postAs is post with the true primary named explicitly: any attempt to
// a different peer carries the failover header, even when (as in a
// hedge) the candidate sequence has been rotated so the substitute
// leads.
func (c *Client) postAs(ctx context.Context, cands []string, primary, path string, body, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var skip map[string]bool
	for attempt := 0; ; attempt++ {
		peer, probe := c.pickPeer(cands, skip)
		start := c.now()
		oc, err := c.do(ctx, peer, path, data, out, peer != primary)
		c.breakerFor(peer).record(oc, probe)
		if err == nil {
			c.observeLatency(c.now().Sub(start))
			return nil
		}
		if ctx.Err() != nil {
			return ctxError(ctx, err)
		}
		var ae *api.Error
		if !errors.As(err, &ae) {
			return err
		}
		if attempt >= c.cfg.MaxRetries {
			return err
		}
		switch {
		case oc == outcomeFault:
			// The peer misbehaved; walk to the next candidate at once.
			if skip == nil {
				skip = make(map[string]bool, len(cands))
			}
			skip[peer] = true
			if len(skip) >= len(cands) {
				// Every peer faulted once: clear and sweep again.
				skip = nil
			}
		case ae.Temporary():
			// Overload shed: the peer is alive but busy; back off.
			wait := backoffFor(attempt, c.cfg.BaseBackoff, c.cfg.MaxBackoff)
			if ae.RetryAfterMS > 0 {
				wait = time.Duration(ae.RetryAfterMS) * time.Millisecond
				if wait > c.cfg.MaxBackoff {
					wait = c.cfg.MaxBackoff
				}
			}
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctxError(ctx, ctx.Err())
			case <-t.C:
			}
		default:
			// Permanent for this request (compile, sim, bad_request,
			// not_found, server-side deadline).
			return err
		}
	}
}

// hedgedPost is post plus read hedging: when enabled and a fallback peer
// exists, a duplicate request races to the next live candidate after the
// hedge delay; the first success wins and the loser's context is
// canceled. Safe only for idempotent reads — Run and Compile are
// content-addressed and deterministic, so duplicates are free except for
// the wasted work.
func (c *Client) hedgedPost(ctx context.Context, cands []string, path string, body, out any) error {
	if !c.cfg.Hedge || len(cands) < 2 {
		return c.post(ctx, cands, path, body, out)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		raw json.RawMessage
		err error
	}
	ch := make(chan res, 2)
	launch := func(seq []string) {
		var raw json.RawMessage
		err := c.postAs(hctx, seq, cands[0], path, body, &raw)
		ch <- res{raw, err}
	}
	go launch(cands)
	launched := 1
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	var firstErr error
	for done := 0; done < launched; {
		select {
		case <-timer.C:
			if launched == 1 {
				// The hedge leads with the next owner; the primary —
				// already being tried — goes last.
				alt := append(append(make([]string, 0, len(cands)), cands[1:]...), cands[0])
				go launch(alt)
				launched = 2
			}
		case r := <-ch:
			done++
			if r.err == nil {
				cancel() // release the loser immediately
				return json.Unmarshal(r.raw, out)
			}
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	return firstErr
}

// hedgeDelay is the configured hedge trigger, or the observed p99 of
// recent successful requests when adaptive.
func (c *Client) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	c.latMu.Lock()
	defer c.latMu.Unlock()
	const fallback = 50 * time.Millisecond
	if c.latN < 8 {
		return fallback
	}
	cp := make([]time.Duration, c.latN)
	copy(cp, c.lats[:c.latN])
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	p99 := cp[len(cp)*99/100]
	if p99 < 2*time.Millisecond {
		p99 = 2 * time.Millisecond
	}
	return p99
}

func (c *Client) observeLatency(d time.Duration) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	c.lats[c.latIdx] = d
	c.latIdx = (c.latIdx + 1) % len(c.lats)
	if c.latN < len(c.lats) {
		c.latN++
	}
}

// maxResponseBytes bounds how much of a response body one attempt will
// buffer; traces stream through Trace, so service responses stay small.
const maxResponseBytes = 16 << 20

// drainBody consumes what remains of a response body (bounded) so the
// transport sees EOF and can return the connection to the keep-alive
// pool. Closing with bytes still unread discards the connection, so
// every partially-read response — an oversized body, a decoded error —
// would otherwise cost the next attempt a fresh connection setup.
func drainBody(r io.Reader) {
	io.Copy(io.Discard, io.LimitReader(r, maxResponseBytes))
}

// do performs one HTTP attempt against peer, classifying the result for
// the peer's circuit breaker. failover marks the request as deliberately
// off-owner so the daemon serves it instead of redirecting.
func (c *Client) do(ctx context.Context, peer, path string, data []byte, out any, failover bool) (outcome, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(data))
	if err != nil {
		return outcomeNeutral, err
	}
	req.Header.Set("Content-Type", "application/json")
	if failover {
		req.Header.Set(api.HeaderFailover, "1")
	}
	// GetBody lets the transport replay the body across the daemon's
	// 307 shard redirects.
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcomeNeutral, ctxError(ctx, err)
		}
		return outcomeFault, &api.Error{Class: api.ClassUnavailable,
			Message: fmt.Sprintf("client: %s unreachable: %v", peer, err),
			Status:  api.ClassUnavailable.HTTPStatus()}
	}
	if resp.StatusCode == http.StatusOK {
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if err == nil {
			drainBody(resp.Body)
		}
		resp.Body.Close()
		if err == nil {
			err = json.Unmarshal(body, out)
		}
		if err != nil {
			if ctx.Err() != nil {
				// Canceled mid-read — a losing hedge or the caller's own
				// budget. The torn body says nothing about peer health; a
				// fault here would poison a healthy peer's breaker every
				// time its hedge loses the race.
				return outcomeNeutral, ctxError(ctx, err)
			}
			// A 200 with an unusable body is a peer fault (truncated or
			// corrupted response), never a wrong answer to the caller.
			return outcomeFault, &api.Error{Class: api.ClassUnavailable,
				Message: fmt.Sprintf("client: %s returned a malformed response: %v", peer, err),
				Status:  api.ClassUnavailable.HTTPStatus()}
		}
		return outcomeOK, nil
	}
	apiErr := decodeError(resp)
	drainBody(resp.Body)
	resp.Body.Close()
	switch apiErr.Class {
	case api.ClassInternal, api.ClassClosed, api.ClassUnavailable:
		// The peer (or a proxy in front of it) is unhealthy for this
		// request; a different peer may do better.
		return outcomeFault, apiErr
	case api.ClassOverload, api.ClassDeadline:
		// Alive but busy, or the caller's own budget: not peer health.
		return outcomeNeutral, apiErr
	default:
		// 4xx: the request's fault; the peer answered correctly.
		return outcomeOK, apiErr
	}
}

// backoffFor returns the sleep before retry `attempt` (0-based): the
// exponential schedule base·2^attempt capped at max, with ±20%
// deterministic jitter (a multiplicative hash of the attempt index) so
// synchronized retry storms spread out without shared RNG state.
func backoffFor(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := uint64(attempt+1) * 0x9E3779B97F4A7C15
	frac := float64(h>>40) / float64(1<<24) // [0, 1)
	return time.Duration(float64(d) * (0.8 + 0.4*frac))
}

// decodeError turns a non-200 response into a *api.Error, synthesizing
// one from the status when the body is not a typed error (a proxy's
// plain-text 502, say).
func decodeError(resp *http.Response) *api.Error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var e api.Error
	if err := json.Unmarshal(body, &e); err == nil && e.Class != "" {
		if e.Status == 0 {
			e.Status = resp.StatusCode
		}
		return &e
	}
	return &api.Error{
		Class:   api.ClassForStatus(resp.StatusCode),
		Message: fmt.Sprintf("client: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
		Status:  resp.StatusCode,
	}
}

// ctxError prefers the context's own story over the transport's wrapped
// version of it, and types it for callers.
func ctxError(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return &api.Error{Class: api.ClassDeadline, Message: ctx.Err().Error(), Status: api.ClassDeadline.HTTPStatus()}
	}
	return err
}

// wireError coerces any error into the typed wire form for batch items.
func wireError(err error) *api.Error {
	var e *api.Error
	if errors.As(err, &e) {
		return e
	}
	return &api.Error{Class: api.ClassInternal, Message: err.Error(), Status: api.ClassInternal.HTTPStatus()}
}
