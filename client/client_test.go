package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spatial/api"
	"spatial/internal/cashd"
	"spatial/internal/serve"
)

const srcLoop = `
int f(int n) {
  int i; int s = 0;
  for (i = 0; i < n; i++) s += i;
  return s;
}`

// startDaemon runs a real cashd behind httptest and returns it with its
// base URL. The handler indirection lets tests know the URL before the
// daemon's shard config is built.
func startDaemon(t *testing.T, build func(url string) cashd.Config) (*cashd.Server, string) {
	t.Helper()
	var s *cashd.Server
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Handler().ServeHTTP(w, r)
	}))
	srv, err := cashd.New(build(ts.URL))
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	s = srv
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts.URL
}

func TestRunAndCompile(t *testing.T) {
	_, url := startDaemon(t, func(string) cashd.Config {
		return cashd.Config{Engine: serve.Config{Workers: 1, CacheEntries: 4}}
	})
	c, err := New(Config{Peers: []string{url}})
	if err != nil {
		t.Fatal(err)
	}

	prog := api.Program{Source: srcLoop, Level: api.LevelFull}
	cr, err := c.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if cr.CacheHit {
		t.Error("first compile reported a cache hit")
	}
	if cr.Key != prog.Key().String() {
		t.Errorf("compile key %q, want %q", cr.Key, prog.Key().String())
	}

	rr, err := c.Run(context.Background(), api.RunRequest{Program: prog, Entry: "f", Args: []int64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Value != 45 {
		t.Errorf("f(10) = %d, want 45", rr.Value)
	}
	if !rr.CacheHit {
		t.Error("run after compile missed the cache")
	}

	// Typed failure: a compile error surfaces as *api.Error, not retried.
	_, err = c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "int f( {"}, Entry: "f"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Class != api.ClassCompile {
		t.Fatalf("err = %v, want api.Error with class compile", err)
	}
}

// TestRetryOnOverload: the client retries 429s with the server's
// Retry-After hint and succeeds once the daemon stops shedding.
func TestRetryOnOverload(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(&api.Error{
				Class: api.ClassOverload, Message: "shed", Status: 429, RetryAfterMS: 1,
			})
			return
		}
		json.NewEncoder(w).Encode(&api.RunResponse{Value: 7})
	}))
	defer ts.Close()

	c, err := New(Config{Peers: []string{ts.URL}, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Value != 7 {
		t.Errorf("value %d, want 7", rr.Value)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (two sheds, one success)", got)
	}
}

// TestRetriesExhausted: a permanently shedding daemon yields the typed
// overload error after MaxRetries+1 attempts.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&api.Error{Class: api.ClassOverload, Message: "shed", RetryAfterMS: 1})
	}))
	defer ts.Close()

	c, err := New(Config{Peers: []string{ts.URL}, MaxRetries: 2, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Class != api.ClassOverload {
		t.Fatalf("err = %v, want overload", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (initial + 2 retries)", got)
	}
}

// TestContextDeadline: the request context bounds attempts and backoff
// sleeps, surfacing as a deadline-classed error.
func TestContextDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
	}))
	defer ts.Close()

	c, err := New(Config{Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = c.Run(ctx, api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Class != api.ClassDeadline {
		t.Fatalf("err = %v, want deadline class", err)
	}
}

// shardedPair starts two daemons sharing a two-peer ring and returns
// them with their URLs.
func shardedPair(t *testing.T) (sA, sB *cashd.Server, urlA, urlB string) {
	t.Helper()
	var hA, hB *cashd.Server
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hA.Handler().ServeHTTP(w, r)
	}))
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hB.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() { tsA.Close(); tsB.Close() })
	peers := []string{tsA.URL, tsB.URL}
	mk := func(self string) *cashd.Server {
		s, err := cashd.New(cashd.Config{
			Engine: serve.Config{Workers: 1, CacheEntries: 8},
			Self:   self, Peers: peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	hA, hB = mk(tsA.URL), mk(tsB.URL)
	return hA, hB, tsA.URL, tsB.URL
}

// programsForBothOwners generates programs until both peers own at
// least one, returning them keyed by owner.
func programsForBothOwners(t *testing.T, ring *api.Ring) map[string][]api.Program {
	t.Helper()
	byOwner := map[string][]api.Program{}
	for i := 0; i < 128; i++ {
		p := api.Program{Source: fmt.Sprintf("int f(void) { return %d; }", i), Level: api.LevelFull}
		o := ring.Owner(p.Key())
		byOwner[o] = append(byOwner[o], p)
		done := true
		for _, ps := range byOwner {
			if len(ps) < 2 {
				done = false
			}
		}
		if len(byOwner) == 2 && done {
			break
		}
	}
	if len(byOwner) < 2 {
		t.Fatal("could not cover both shards")
	}
	return byOwner
}

// TestShardedBatch: a mixed-owner batch is partitioned across daemons
// and reassembled in request order; each daemon only compiles what it
// owns.
func TestShardedBatch(t *testing.T) {
	sA, sB, urlA, urlB := shardedPair(t)
	c, err := New(Config{Peers: []string{urlA, urlB}})
	if err != nil {
		t.Fatal(err)
	}
	byOwner := programsForBothOwners(t, api.NewRing([]string{urlA, urlB}, 0))

	// Interleave owners so ordering is a real claim.
	var runs []api.RunRequest
	var wantOwner []string
	for i := 0; i < 2; i++ {
		for o, ps := range byOwner {
			runs = append(runs, api.RunRequest{Program: ps[i], Entry: "f"})
			wantOwner = append(wantOwner, o)
		}
	}
	resp, err := c.Batch(context.Background(), api.BatchRequest{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(runs) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(runs))
	}
	for i, item := range resp.Results {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		// Each source returns its literal constant: order is preserved
		// exactly when every value matches its request's program.
		var want int64
		fmt.Sscanf(runs[i].Source, "int f(void) { return %d; }", &want)
		if item.Run.Value != want {
			t.Errorf("item %d: value %d, want %d (results out of order?)", i, item.Run.Value, want)
		}
		_ = wantOwner
	}
	// Both daemons did real work, and neither compiled the other's share.
	stA, stB := sA.Engine().Stats(), sB.Engine().Stats()
	if stA.Completed == 0 || stB.Completed == 0 {
		t.Errorf("work not partitioned: completed A=%d B=%d", stA.Completed, stB.Completed)
	}
	if int(stA.Completed+stB.Completed) != len(runs) {
		t.Errorf("completed A+B = %d, want %d", stA.Completed+stB.Completed, len(runs))
	}
}

// TestStaleRoutingFollowsRedirect: a client that only knows one peer
// still reaches programs owned by the other, via the daemon's 307.
func TestStaleRoutingFollowsRedirect(t *testing.T) {
	_, sB, urlA, urlB := shardedPair(t)
	byOwner := programsForBothOwners(t, api.NewRing([]string{urlA, urlB}, 0))

	// Out-of-date client: it believes A is the only daemon.
	c, err := New(Config{Peers: []string{urlA}})
	if err != nil {
		t.Fatal(err)
	}
	foreign := byOwner[urlB][0]
	rr, err := c.Run(context.Background(), api.RunRequest{Program: foreign, Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	fmt.Sscanf(foreign.Source, "int f(void) { return %d; }", &want)
	if rr.Value != want {
		t.Errorf("value %d, want %d", rr.Value, want)
	}
	// The run actually happened on B, where the program lives.
	if sB.Engine().Stats().Completed != 1 {
		t.Errorf("owner daemon completed %d runs, want 1", sB.Engine().Stats().Completed)
	}
}

// TestTraceAcrossPeers: the client finds a trace no matter which daemon
// holds it.
func TestTraceAcrossPeers(t *testing.T) {
	_, _, urlA, urlB := shardedPair(t)
	c, err := New(Config{Peers: []string{urlA, urlB}})
	if err != nil {
		t.Fatal(err)
	}
	byOwner := programsForBothOwners(t, api.NewRing([]string{urlA, urlB}, 0))
	// Record a trace on shard B.
	rr, err := c.Run(context.Background(), api.RunRequest{Program: byOwner[urlB][0], Entry: "f", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.TraceID == "" {
		t.Fatal("no trace id")
	}
	var buf bytes.Buffer
	if err := c.Trace(context.Background(), rr.TraceID, &buf); err != nil {
		t.Fatal(err)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) == 0 {
		t.Errorf("downloaded trace invalid (err=%v, %d events)", err, len(events))
	}

	var ae *api.Error
	if err := c.Trace(context.Background(), "nope", &bytes.Buffer{}); !errors.As(err, &ae) || ae.Class != api.ClassNotFound {
		t.Errorf("missing trace: err = %v, want not_found", err)
	}
}

func TestHealth(t *testing.T) {
	_, _, urlA, urlB := shardedPair(t)
	c, err := New(Config{Peers: []string{urlA, urlB}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Peers) != 2 {
		t.Fatalf("report covers %d peers, want 2", len(rep.Peers))
	}
	for _, ph := range rep.Peers {
		if !ph.OK || ph.Err != "" {
			t.Errorf("peer %s reported unhealthy: %+v", ph.Peer, ph)
		}
		if ph.Breaker != "closed" {
			t.Errorf("peer %s breaker %q, want closed", ph.Peer, ph.Breaker)
		}
	}
	if len(rep.Down()) != 0 {
		t.Errorf("Down() = %v, want empty", rep.Down())
	}
	// A dead peer is named in the failure and opens its breaker.
	dead := "http://127.0.0.1:1"
	c2, err := New(Config{Peers: []string{urlA, dead}})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := c2.Health(context.Background())
	if err == nil {
		t.Error("Health passed with a dead peer")
	}
	if rep2 == nil {
		t.Fatal("Health must still return the report alongside the error")
	}
	down := rep2.Down()
	if len(down) != 1 || down[0].Peer != dead || down[0].Err == "" {
		t.Errorf("Down() = %+v, want the dead peer with its error", down)
	}
	if down[0].Breaker != "open" {
		t.Errorf("dead peer breaker %q, want open", down[0].Breaker)
	}
}

// TestUntypedErrorSynthesis: a plain-text failure from a proxy still
// comes back as a classed error.
func TestUntypedErrorSynthesis(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()
	c, err := New(Config{Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Class != api.ClassInternal || ae.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want synthesized internal error with status 502", err)
	}
}

func TestNoPeers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty peer set")
	}
}
