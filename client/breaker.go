package client

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-peer circuit breaker. The zero value of
// every field selects the documented default.
type BreakerConfig struct {
	// Window is the sliding window of recorded outcomes per peer; 0
	// means 16.
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// failure rate can trip the breaker; 0 means 4.
	MinSamples int
	// FailureRate is the windowed failure fraction at which the breaker
	// opens; 0 means 0.5.
	FailureRate float64
	// Cooldown is how long an open breaker waits before admitting a
	// half-open probe; 0 means 1s.
	Cooldown time.Duration
	// Disabled turns the breaker off: every peer is always routable.
	Disabled bool
}

func (c BreakerConfig) window() int {
	if c.Window <= 0 {
		return 16
	}
	return c.Window
}

func (c BreakerConfig) minSamples() int {
	if c.MinSamples <= 0 {
		return 4
	}
	return c.MinSamples
}

func (c BreakerConfig) failureRate() float64 {
	if c.FailureRate <= 0 {
		return 0.5
	}
	return c.FailureRate
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return time.Second
	}
	return c.Cooldown
}

// outcome classifies one attempt for the breaker: did the PEER misbehave
// (fault), behave (ok), or did the attempt say nothing about peer health
// (neutral — an overload shed, a caller-side deadline)?
type outcome int8

const (
	outcomeOK outcome = iota
	outcomeNeutral
	outcomeFault
)

// breakerState is the classic three-state circuit: closed admits all
// traffic, open admits none until a cooldown, half-open admits a single
// probe whose outcome closes or re-opens the circuit.
type breakerState int8

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker with a sliding outcome window.
// The clock is injectable so tests drive state transitions without
// sleeping.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    breakerState
	openedAt time.Time
	probing  bool   // a half-open probe is in flight
	window   []bool // ring buffer of outcomes, true = ok
	n, idx   int
	fails    int
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, now: now, window: make([]bool, cfg.window())}
}

// allow reports whether a request may be routed to this peer right now,
// and whether that admission holds the half-open state's single probe
// slot. Every admitted attempt must be paired with exactly one record
// call carrying the same probe flag: only the probe's outcome may move
// a non-closed circuit. Callers routed here anyway (pickPeer's
// last-resort fallback) record with probe=false and cannot flip the
// circuit under the real probe.
func (b *breaker) allow() (ok, probe bool) {
	if b == nil || b.cfg.Disabled {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true, false
	case bkOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.cooldown() {
			b.state = bkHalfOpen
			b.probing = true
			return true, true
		}
		return false, false
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record feeds one attempt's outcome back. A half-open probe's success
// closes the circuit (and clears history); its failure re-opens it. In
// the closed state, outcomes land in the sliding window and the breaker
// opens when the failure rate crosses the threshold. Outside the closed
// state, outcomes from non-probe attempts are dropped: they were routed
// past a refusing breaker, often started before the circuit opened, and
// letting them stand in for the probe re-opens (or worse, closes) the
// circuit on evidence the probe never gathered.
func (b *breaker) record(oc outcome, probe bool) {
	if b == nil || b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != bkClosed {
		if b.state == bkHalfOpen && probe {
			b.probing = false
			switch oc {
			case outcomeOK:
				b.resetLocked()
			case outcomeFault:
				b.state = bkOpen
				b.openedAt = b.now()
			}
		}
		return
	}
	if oc == outcomeNeutral {
		return
	}
	b.pushLocked(oc == outcomeOK)
	if b.n >= b.cfg.minSamples() &&
		float64(b.fails)/float64(b.n) >= b.cfg.failureRate() {
		b.state = bkOpen
		b.openedAt = b.now()
	}
}

// observeHealth feeds a /healthz check in as a strong signal: success
// force-closes the circuit (fast recovery after a resurrected peer),
// failure force-opens it (stop routing before the first lost request).
func (b *breaker) observeHealth(ok bool) {
	if b == nil || b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.resetLocked()
		return
	}
	b.state = bkOpen
	b.openedAt = b.now()
	b.probing = false
}

func (b *breaker) stateName() string {
	if b == nil || b.cfg.Disabled {
		return bkClosed.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

func (b *breaker) resetLocked() {
	b.state = bkClosed
	b.probing = false
	b.n, b.idx, b.fails = 0, 0, 0
}

func (b *breaker) pushLocked(ok bool) {
	if b.n == len(b.window) {
		if !b.window[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = ok
	if !ok {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
}
