package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spatial/api"
)

// TestHedgeLoserNeutral: a hedge loser canceled mid-body is neutral for
// its peer's breaker. Before the fix, the torn read was classified as a
// peer fault, so a peer that merely lost the race — while answering
// 200 — had its breaker poisoned on every hedged read; with an eager
// breaker config one loss was enough to open the circuit against a
// healthy peer.
func TestHedgeLoserNeutral(t *testing.T) {
	payload, _ := json.Marshal(&api.RunResponse{Value: 9})
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Commit the 200 and half the body, then stall: the loser's
		// cancellation lands mid-read, not mid-connect.
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.WriteHeader(http.StatusOK)
		w.Write(payload[:len(payload)/2])
		w.(http.Flusher).Flush()
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer fast.Close()

	peers := []string{slow.URL, fast.URL}
	c, err := New(Config{
		Peers: peers, Hedge: true, HedgeDelay: 10 * time.Millisecond,
		// One fault trips the circuit — exactly the configuration the
		// old misclassification broke.
		Breaker: BreakerConfig{Window: 4, MinSamples: 1, FailureRate: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := programOwnedBy(t, api.NewRing(peers, 0), slow.URL)
	for i := 0; i < 3; i++ {
		rr, err := c.Run(context.Background(), api.RunRequest{Program: p, Entry: "f"})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if rr.Value != 9 {
			t.Fatalf("run %d: value %d, want 9", i, rr.Value)
		}
	}
	if got := c.breakerFor(slow.URL).stateName(); got != "closed" {
		t.Fatalf("losing peer's breaker is %s, want closed: hedge losses are not peer faults", got)
	}
}

// TestHedgeNoGoroutineLeak: repeated hedged reads leave no goroutines
// behind — the loser's attempt is canceled, its body closed, and its
// postAs loop unwound.
func TestHedgeNoGoroutineLeak(t *testing.T) {
	payload, _ := json.Marshal(&api.RunResponse{Value: 9})
	handler := func(delay time.Duration) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
			w.Write(payload)
		}
	}
	slow := httptest.NewServer(handler(400 * time.Millisecond))
	defer slow.Close()
	fast := httptest.NewServer(handler(0))
	defer fast.Close()

	peers := []string{slow.URL, fast.URL}
	c, err := New(Config{Peers: peers, Hedge: true, HedgeDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p := programOwnedBy(t, api.NewRing(peers, 0), slow.URL)

	// Warm-up: populate the transport's keep-alive pool (its per-idle-
	// connection read/write loops are persistent, not leaks) before
	// taking the baseline.
	for i := 0; i < 3; i++ {
		if _, err := c.Run(context.Background(), api.RunRequest{Program: p, Entry: "f"}); err != nil {
			t.Fatalf("warm-up run %d: %v", i, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := c.Run(context.Background(), api.RunRequest{Program: p, Entry: "f"}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after 10 hedged runs\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestErrorBodyDrainedForReuse: a decoded error response larger than
// decodeError's read limit is drained before close, so the keep-alive
// connection is reused instead of being torn down mid-body. One client
// retrying against one shedding daemon must stay on one connection.
func TestErrorBodyDrainedForReuse(t *testing.T) {
	shed, _ := json.Marshal(&api.Error{Class: api.ClassOverload,
		Message: "shed " + strings.Repeat("x", 2<<20)}) // past the 1MB error-read limit
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write(shed)
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c, err := New(Config{Peers: []string{ts.URL}, MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Class != api.ClassOverload {
		t.Fatalf("err = %v, want overload", err)
	}
	if n := conns.Load(); n != 1 {
		t.Errorf("4 sequential attempts used %d connections, want 1 (bodies not drained for reuse)", n)
	}
}
