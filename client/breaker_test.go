package client

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testBreaker(cooldown time.Duration) (*breaker, *time.Time) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Window: 8, MinSamples: 4, FailureRate: 0.5, Cooldown: cooldown},
		func() time.Time { return now })
	return b, &now
}

// TestBreakerLifecycle drives the full closed → open → half-open →
// closed circuit with a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	b, now := testBreaker(time.Second)
	if ok, probe := b.allow(); !ok || probe {
		t.Fatalf("fresh breaker: allow = (%v, %v), want closed admission (true, false)", ok, probe)
	}
	// Failures below MinSamples leave it closed.
	for i := 0; i < 3; i++ {
		b.record(outcomeFault, false)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("after 3 faults: %s, want closed (below MinSamples)", got)
	}
	// The fourth failure crosses the rate threshold.
	b.record(outcomeFault, false)
	if got := b.stateName(); got != "open" {
		t.Fatalf("after 4/4 faults: %s, want open", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	*now = now.Add(time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatalf("cooldown elapsed: allow = (%v, %v), want the probe slot (true, true)", ok, probe)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// The probe fails: re-open, fresh cooldown.
	b.record(outcomeFault, true)
	if got := b.stateName(); got != "open" {
		t.Fatalf("failed probe left state %s, want open", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Next probe succeeds: closed again, history cleared.
	*now = now.Add(time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("second probe refused")
	}
	b.record(outcomeOK, true)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("successful probe left state %s, want closed", got)
	}
	// History was cleared: three fresh faults don't re-trip.
	for i := 0; i < 3; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatal("closed breaker refused traffic")
		}
		b.record(outcomeFault, false)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("window not cleared on close: %s", got)
	}
}

// TestBreakerNeutralOutcomes: sheds and caller deadlines say nothing
// about peer health and never trip the circuit.
func TestBreakerNeutralOutcomes(t *testing.T) {
	b, _ := testBreaker(time.Second)
	for i := 0; i < 50; i++ {
		b.record(outcomeNeutral, false)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("neutral outcomes tripped the breaker: %s", got)
	}
	// A neutral half-open probe releases the slot without closing.
	for i := 0; i < 4; i++ {
		b.record(outcomeFault, false)
	}
	bNow := b.now().Add(2 * time.Second)
	b.now = func() time.Time { return bNow }
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("probe refused after cooldown")
	}
	b.record(outcomeNeutral, true)
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("neutral probe moved state to %s, want half-open", got)
	}
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("probe slot not released after neutral outcome")
	}
}

// TestBreakerMixedWindow: the breaker trips on rate, not streaks.
func TestBreakerMixedWindow(t *testing.T) {
	b, _ := testBreaker(time.Second)
	// Alternate ok/fault: 50% failure rate >= threshold once MinSamples
	// is reached.
	b.record(outcomeOK, false)
	b.record(outcomeFault, false)
	b.record(outcomeOK, false)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("1/3 failures tripped: %s", got)
	}
	b.record(outcomeFault, false)
	if got := b.stateName(); got != "open" {
		t.Fatalf("2/4 failures at threshold 0.5 left state %s, want open", got)
	}
}

// TestBreakerNonProbeRecords: outcomes from attempts that were routed
// past a refusing breaker (pickPeer's fallback) must not move a
// non-closed circuit — neither re-open it under the probe nor close it
// without one. The former symptom: any caller's stale fault was treated
// as "the probe failed", so a recovering peer behind a burst of
// fallback traffic could never leave half-open.
func TestBreakerNonProbeRecords(t *testing.T) {
	b, now := testBreaker(time.Second)
	for i := 0; i < 4; i++ {
		b.record(outcomeFault, false)
	}
	*now = now.Add(time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("probe refused after cooldown")
	}
	// Fallback traffic reports while the probe is in flight.
	b.record(outcomeFault, false)
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("non-probe fault moved half-open state to %s", got)
	}
	b.record(outcomeOK, false)
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("non-probe success moved half-open state to %s", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("probe slot stolen by a non-probe record")
	}
	// Only the probe's own outcome closes the circuit.
	b.record(outcomeOK, true)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("probe success left state %s, want closed", got)
	}

	// Open state: fallback records are equally inert.
	for i := 0; i < 4; i++ {
		b.record(outcomeFault, false)
	}
	b.record(outcomeOK, false)
	if got := b.stateName(); got != "open" {
		t.Fatalf("non-probe success moved open state to %s", got)
	}
}

// TestBreakerSingleProbeConcurrent: under concurrent callers (run with
// -race), an open breaker past cooldown admits exactly one probe; the
// losers' outcomes never flip the circuit.
func TestBreakerSingleProbeConcurrent(t *testing.T) {
	b, now := testBreaker(time.Second)
	for i := 0; i < 4; i++ {
		b.record(outcomeFault, false)
	}
	*now = now.Add(time.Second)

	const callers = 16
	var probes, admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, probe := b.allow()
			if ok {
				admitted.Add(1)
			}
			if !probe {
				// A refused caller routed elsewhere still reports its
				// attempt; simulate the worst case of stale fallback
				// faults landing on this breaker.
				b.record(outcomeFault, false)
				return
			}
			probes.Add(1)
		}()
	}
	wg.Wait()
	if probes.Load() != 1 || admitted.Load() != 1 {
		t.Fatalf("admitted %d callers with %d probe slots, want exactly 1/1", admitted.Load(), probes.Load())
	}
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("fallback faults moved the circuit to %s with the probe still in flight", got)
	}
	b.record(outcomeOK, true)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("probe success left state %s, want closed", got)
	}
}

// TestBreakerHealthSignals: /healthz outcomes are strong — they
// force-close or force-open regardless of the window.
func TestBreakerHealthSignals(t *testing.T) {
	b, _ := testBreaker(time.Hour)
	b.observeHealth(false)
	if got := b.stateName(); got != "open" {
		t.Fatalf("failed health check left state %s, want open", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted traffic inside a long cooldown")
	}
	b.observeHealth(true)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("healthy check left state %s, want closed", got)
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("recovered breaker refused traffic")
	}
}

// TestBreakerDisabled: a disabled breaker is transparent.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Disabled: true}, nil)
	for i := 0; i < 20; i++ {
		b.record(outcomeFault, false)
		if ok, probe := b.allow(); !ok || probe {
			t.Fatal("disabled breaker refused traffic or handed out a probe slot")
		}
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("disabled breaker reports %s", got)
	}
}
