package client

import (
	"testing"
	"time"
)

func testBreaker(cooldown time.Duration) (*breaker, *time.Time) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Window: 8, MinSamples: 4, FailureRate: 0.5, Cooldown: cooldown},
		func() time.Time { return now })
	return b, &now
}

// TestBreakerLifecycle drives the full closed → open → half-open →
// closed circuit with a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	b, now := testBreaker(time.Second)
	if !b.allow() {
		t.Fatal("fresh breaker must be closed")
	}
	// Failures below MinSamples leave it closed.
	for i := 0; i < 3; i++ {
		b.record(outcomeFault)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("after 3 faults: %s, want closed (below MinSamples)", got)
	}
	// The fourth failure crosses the rate threshold.
	b.record(outcomeFault)
	if got := b.stateName(); got != "open" {
		t.Fatalf("after 4/4 faults: %s, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	*now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// The probe fails: re-open, fresh cooldown.
	b.record(outcomeFault)
	if got := b.stateName(); got != "open" {
		t.Fatalf("failed probe left state %s, want open", got)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Next probe succeeds: closed again, history cleared.
	*now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("second probe refused")
	}
	b.record(outcomeOK)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("successful probe left state %s, want closed", got)
	}
	// History was cleared: three fresh faults don't re-trip.
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatal("closed breaker refused traffic")
		}
		b.record(outcomeFault)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("window not cleared on close: %s", got)
	}
}

// TestBreakerNeutralOutcomes: sheds and caller deadlines say nothing
// about peer health and never trip the circuit.
func TestBreakerNeutralOutcomes(t *testing.T) {
	b, _ := testBreaker(time.Second)
	for i := 0; i < 50; i++ {
		b.record(outcomeNeutral)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("neutral outcomes tripped the breaker: %s", got)
	}
	// A neutral half-open probe releases the slot without closing.
	for i := 0; i < 4; i++ {
		b.record(outcomeFault)
	}
	bNow := b.now().Add(2 * time.Second)
	b.now = func() time.Time { return bNow }
	if !b.allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.record(outcomeNeutral)
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("neutral probe moved state to %s, want half-open", got)
	}
	if !b.allow() {
		t.Fatal("probe slot not released after neutral outcome")
	}
}

// TestBreakerMixedWindow: the breaker trips on rate, not streaks.
func TestBreakerMixedWindow(t *testing.T) {
	b, _ := testBreaker(time.Second)
	// Alternate ok/fault: 50% failure rate >= threshold once MinSamples
	// is reached.
	b.record(outcomeOK)
	b.record(outcomeFault)
	b.record(outcomeOK)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("1/3 failures tripped: %s", got)
	}
	b.record(outcomeFault)
	if got := b.stateName(); got != "open" {
		t.Fatalf("2/4 failures at threshold 0.5 left state %s, want open", got)
	}
}

// TestBreakerHealthSignals: /healthz outcomes are strong — they
// force-close or force-open regardless of the window.
func TestBreakerHealthSignals(t *testing.T) {
	b, _ := testBreaker(time.Hour)
	b.observeHealth(false)
	if got := b.stateName(); got != "open" {
		t.Fatalf("failed health check left state %s, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted traffic inside a long cooldown")
	}
	b.observeHealth(true)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("healthy check left state %s, want closed", got)
	}
	if !b.allow() {
		t.Fatal("recovered breaker refused traffic")
	}
}

// TestBreakerDisabled: a disabled breaker is transparent.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Disabled: true}, nil)
	for i := 0; i < 20; i++ {
		b.record(outcomeFault)
		if !b.allow() {
			t.Fatal("disabled breaker refused traffic")
		}
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("disabled breaker reports %s", got)
	}
}
