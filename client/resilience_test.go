package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spatial/api"
	"spatial/internal/cashd"
	"spatial/internal/serve"
)

// programOwnedBy generates constant-returning programs until one hashes
// to the given peer's shard.
func programOwnedBy(t *testing.T, ring *api.Ring, peer string) api.Program {
	t.Helper()
	for i := 0; i < 512; i++ {
		p := api.Program{Source: fmt.Sprintf("int f(void) { return %d; }", i), Level: api.LevelFull}
		if ring.Owner(p.Key()) == peer {
			return p
		}
	}
	t.Fatalf("no program owned by %s in 512 tries", peer)
	return api.Program{}
}

// TestBackoffCapAndJitter pins the backoff schedule: deterministic,
// within ±20% of the capped exponential, and bounded in total — the
// regression guard for the formerly unbounded backoff *= 2 loop.
func TestBackoffCapAndJitter(t *testing.T) {
	const base, max = 10 * time.Millisecond, 80 * time.Millisecond
	var total time.Duration
	const retries = 12
	for a := 0; a < retries; a++ {
		d := backoffFor(a, base, max)
		if d != backoffFor(a, base, max) {
			t.Fatalf("attempt %d: jitter is not deterministic", a)
		}
		sched := base
		for i := 0; i < a && sched < max; i++ {
			sched *= 2
		}
		if sched > max {
			sched = max
		}
		lo := time.Duration(float64(sched) * 0.8)
		hi := time.Duration(float64(sched) * 1.2)
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", a, d, lo, hi)
		}
		total += d
	}
	// N retries sleep at most N * 1.2 * MaxBackoff in total; the
	// uncapped schedule would be ~base * 2^N.
	if bound := time.Duration(float64(retries) * 1.2 * float64(max)); total > bound {
		t.Errorf("total sleep %v exceeds bound %v", total, bound)
	}
}

// TestBackoffBoundedWallClock: with MaxBackoff set, exhausting retries
// against a permanently shedding daemon is fast — the old unbounded
// doubling would have slept >600ms here.
func TestBackoffBoundedWallClock(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&api.Error{Class: api.ClassOverload, Message: "shed"})
	}))
	defer ts.Close()
	c, err := New(Config{Peers: []string{ts.URL}, MaxRetries: 6,
		BaseBackoff: 10 * time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	elapsed := time.Since(start)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Class != api.ClassOverload {
		t.Fatalf("err = %v, want overload", err)
	}
	if elapsed > 300*time.Millisecond {
		t.Errorf("6 capped retries took %v; MaxBackoff is not bounding the schedule", elapsed)
	}
}

// TestFailoverToNextOwner: with the owning peer dead, the request walks
// the ring to the survivor, which serves it (failover header) instead of
// redirecting back to the corpse.
func TestFailoverToNextOwner(t *testing.T) {
	// A peer that is provably dead: bind a port, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	var sB *cashd.Server
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sB.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	peers := []string{dead, ts.URL}
	srv, err := cashd.New(cashd.Config{
		Engine: serve.Config{Workers: 1, CacheEntries: 8},
		Self:   ts.URL, Peers: peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	sB = srv
	defer srv.Close()

	c, err := New(Config{Peers: peers, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p := programOwnedBy(t, api.NewRing(peers, 0), dead)
	var want int64
	fmt.Sscanf(p.Source, "int f(void) { return %d; }", &want)
	for i := 0; i < 3; i++ {
		rr, err := c.Run(context.Background(), api.RunRequest{Program: p, Entry: "f"})
		if err != nil {
			t.Fatalf("run %d: %v (failover did not reach the live peer)", i, err)
		}
		if rr.Value != want {
			t.Fatalf("run %d: value %d, want %d", i, rr.Value, want)
		}
	}
	s := srv.Engine().Stats()
	if s.Completed != 3 {
		t.Errorf("survivor completed %d runs, want 3 (every failover served there)", s.Completed)
	}
	if s.CacheMisses != 1 {
		t.Errorf("survivor compiled %d times, want 1 (repeats warm from its cache)", s.CacheMisses)
	}
}

// TestHedgedRun: a slow primary is raced by a hedge to the next peer;
// the fast answer wins well before the primary would have responded.
func TestHedgedRun(t *testing.T) {
	resp := func(w http.ResponseWriter) {
		json.NewEncoder(w).Encode(&api.RunResponse{Value: 9})
	}
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(time.Second):
		case <-r.Context().Done():
			return
		}
		resp(w)
	}))
	defer slow.Close()
	var hedged atomic.Bool
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(api.HeaderFailover) != "" {
			hedged.Store(true)
		}
		resp(w)
	}))
	defer fast.Close()

	peers := []string{slow.URL, fast.URL}
	c, err := New(Config{Peers: peers, Hedge: true, HedgeDelay: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p := programOwnedBy(t, api.NewRing(peers, 0), slow.URL)
	start := time.Now()
	rr, err := c.Run(context.Background(), api.RunRequest{Program: p, Entry: "f"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Value != 9 {
		t.Errorf("value %d, want 9", rr.Value)
	}
	if elapsed > 800*time.Millisecond {
		t.Errorf("hedged run took %v; the hedge did not win over the 1s primary", elapsed)
	}
	if !hedged.Load() {
		t.Error("hedge request did not carry the failover header")
	}
}

// TestMalformedBodyRetried: a truncated 200 body is a typed, retriable
// peer fault — never a decode error leaked to the caller.
func TestMalformedBodyRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Write([]byte(`{"value": 9`)) // torn mid-write
			return
		}
		json.NewEncoder(w).Encode(&api.RunResponse{Value: 9})
	}))
	defer ts.Close()
	c, err := New(Config{Peers: []string{ts.URL}, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := c.Run(context.Background(), api.RunRequest{Program: api.Program{Source: "x"}, Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Value != 9 || calls.Load() != 2 {
		t.Errorf("value %d after %d calls, want 9 after 2", rr.Value, calls.Load())
	}
}
