package spatial

import (
	"context"

	"spatial/internal/serve"
)

// Engine is the batch simulation service: a content-addressed compile
// cache (bounded LRU with single-flight) in front of a fixed worker
// pool with a bounded admission queue. Create one with NewEngine,
// submit with Do or DoBatch from any number of goroutines, and Close it
// when done. See internal/serve and DESIGN.md "Concurrency model".
type Engine = serve.Engine

// EngineConfig parameterizes NewEngine; the zero value selects
// defaults (GOMAXPROCS workers, 4x queue depth, 64 cache entries).
type EngineConfig = serve.Config

// BatchRequest is one simulation to execute: compile-time fields form
// the cache key, run-time fields (Entry, Args, Deadline) do not.
type BatchRequest = serve.Request

// BatchResponse is the outcome of one request, including whether the
// compilation was served from the cache and the queue/total latency.
type BatchResponse = serve.Response

// BatchResult pairs one DoBatch item's response with its error.
type BatchResult = serve.BatchResult

// EngineStats is a snapshot of an engine's counters (runs, cache
// hits/misses/evictions, rejections).
type EngineStats = serve.Stats

// Engine-level errors; compile and run failures come back classified
// as ErrCompile / ErrSim like everywhere else.
var (
	// ErrOverload reports a request shed because the admission queue was
	// full; back off and retry.
	ErrOverload = serve.ErrOverload
	// ErrEngineClosed reports a request submitted after Close.
	ErrEngineClosed = serve.ErrClosed
)

// NewEngine starts a batch simulation engine.
func NewEngine(cfg EngineConfig) *Engine { return serve.New(cfg) }

// Simulate is the one-shot convenience for a single request on a
// temporary engine; for repeated or concurrent use, keep an Engine.
func Simulate(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	e := serve.New(serve.Config{})
	defer e.Close()
	return e.Do(ctx, req)
}
