package spatial

import (
	"context"

	"spatial/api"
	"spatial/internal/serve"
)

// Engine is the batch simulation service: a content-addressed compile
// cache (bounded LRU with single-flight, optionally persisted to disk)
// in front of a fixed worker pool with a bounded admission queue.
// Create one with NewEngine, submit with Do or DoBatch from any number
// of goroutines, and Close it when done. See internal/serve and
// DESIGN.md "Concurrency model" / "Service layer".
type Engine = serve.Engine

// EngineConfig parameterizes NewEngine; the zero value selects
// defaults (GOMAXPROCS workers, 4x queue depth, 64 cache entries,
// in-memory cache). Set CacheDir to persist the compile cache across
// restarts.
type EngineConfig = serve.Config

// Program is the versioned wire form of a program's compile-time
// configuration (source, level, pass toggles, simulator config) — the
// same type the cashd daemon serves over HTTP (see package spatial/api).
type Program = api.Program

// BatchRequest is one simulation to execute: the embedded Program forms
// the cache key, run-time fields (Entry, Args, Deadline) do not.
type BatchRequest = serve.Request

// BatchResponse is the outcome of one request, including whether the
// compilation was served from the cache and the queue/total latency.
type BatchResponse = serve.Response

// BatchResult pairs one DoBatch item's response with its error.
type BatchResult = serve.BatchResult

// EngineStats is a snapshot of an engine's counters (runs, cache
// hits/misses/evictions, rejections, queue occupancy).
type EngineStats = serve.Stats

// Engine-level errors; compile and run failures come back classified
// as ErrCompile / ErrSim like everywhere else.
var (
	// ErrOverload reports a request shed because the admission queue was
	// full; back off and retry.
	ErrOverload = serve.ErrOverload
	// ErrEngineClosed reports a request submitted after Close.
	ErrEngineClosed = serve.ErrClosed
)

// NewEngine starts a batch simulation engine. It fails only when
// EngineConfig.CacheDir names an unusable directory.
func NewEngine(cfg EngineConfig) (*Engine, error) { return serve.New(cfg) }

// Simulate is the one-shot convenience for a single request on a
// temporary engine, optionally configured by cfg (at most one; extras
// are ignored beyond the first).
//
// Each call builds and tears down a fresh engine, so nothing is shared
// between calls — in particular the compile cache starts empty every
// time, and two Simulate calls for the same program compile it twice.
// For repeated or concurrent use, keep an Engine (or set
// EngineConfig.CacheDir so at least the persisted cache carries over).
func Simulate(ctx context.Context, req BatchRequest, cfg ...EngineConfig) (*BatchResponse, error) {
	var c EngineConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	e, err := serve.New(c)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Do(ctx, req)
}
