package api

import "fmt"

// Class partitions every service failure, mirroring the library's error
// taxonomy (ErrCompile/ErrSim/ErrInternal) plus the service-level
// conditions a network caller needs to tell apart. Each class has a
// fixed HTTP status; clients should dispatch on Class, not on status.
type Class string

// Error classes.
const (
	// ClassBadRequest: the request body was malformed or structurally
	// invalid (not JSON, unknown fields, missing source).
	ClassBadRequest Class = "bad_request"
	// ClassCompile: the program was rejected by the compiler
	// (parse/check/build/optimize, or invalid configuration).
	ClassCompile Class = "compile"
	// ClassSim: the program failed at run time (deadlock, livelock,
	// detected fault, resource limit).
	ClassSim Class = "sim"
	// ClassInternal: a bug in the service or library, never the
	// caller's fault.
	ClassInternal Class = "internal"
	// ClassOverload: the admission queue was full; retry after backoff
	// (the response carries Retry-After).
	ClassOverload Class = "overload"
	// ClassDeadline: the request exceeded its TimeoutMS budget.
	ClassDeadline Class = "deadline"
	// ClassNotFound: the named resource (trace ID, route) does not exist.
	ClassNotFound Class = "not_found"
	// ClassClosed: the service is shutting down.
	ClassClosed Class = "closed"
	// ClassUnavailable: the peer could not be reached or returned an
	// unusable response (connection refused/reset, malformed body).
	// Synthesized client-side; a different peer may succeed.
	ClassUnavailable Class = "unavailable"
)

// HeaderFailover marks a request deliberately sent to a non-owning peer
// (breaker failover or a hedged read). A daemon seeing it serves the
// request instead of 307-redirecting to the owner — which may be the
// very peer the client is routing around.
const HeaderFailover = "X-Cashd-Failover"

// HTTPStatus maps a class to its HTTP status code. Unknown classes map
// to 500 so a future class degrades safely.
func (c Class) HTTPStatus() int {
	switch c {
	case ClassBadRequest:
		return 400
	case ClassNotFound:
		return 404
	case ClassCompile, ClassSim:
		return 422
	case ClassOverload:
		return 429
	case ClassClosed, ClassUnavailable:
		return 503
	case ClassDeadline:
		return 504
	default:
		return 500
	}
}

// ClassForStatus is the client-side fallback when a response carries no
// decodable error body (a proxy error page, a truncated write): the
// best class guess for a bare status code.
func ClassForStatus(status int) Class {
	switch status {
	case 400:
		return ClassBadRequest
	case 404:
		return ClassNotFound
	case 422:
		return ClassCompile
	case 429:
		return ClassOverload
	case 503:
		return ClassClosed
	case 504:
		return ClassDeadline
	default:
		return ClassInternal
	}
}

// Error is the typed failure payload every non-2xx response carries.
// It implements the error interface, so the client returns it directly.
type Error struct {
	// Class is the failure class; dispatch on it.
	Class Class `json:"class"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Status echoes the HTTP status the server sent, for logs.
	Status int `json:"status,omitempty"`
	// RetryAfterMS, on ClassOverload, is the server's backoff hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Report carries a structured diagnosis when one exists (e.g. the
	// deadlock StuckReport rendering).
	Report string `json:"report,omitempty"`
}

// Error renders the class and message.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Class, e.Message) }

// Temporary reports whether retrying the identical request may succeed.
func (e *Error) Temporary() bool {
	return e.Class == ClassOverload || e.Class == ClassClosed || e.Class == ClassUnavailable
}
