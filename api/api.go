// Package api is the versioned wire contract of the cashd simulation
// service: the JSON request/response types served over HTTP by cmd/cashd,
// consumed by the client package, and shared with the in-process batch
// engine (internal/serve), so the network path and the library path speak
// one contract.
//
// The types here are deliberately self-contained — no imports from the
// compiler internals — and every field carries an explicit JSON tag.
// Field names are frozen for a given Version: additions are allowed
// (new optional fields), renames and removals are not. TestWireStability
// pins the marshaled field set so an accidental rename fails loudly.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Version is the wire-format version; it prefixes every route ("/v1/run")
// and is baked into cache keys so incompatible daemons never share state.
const Version = "v1"

// Level selects an optimization preset, mirroring the compiler's
// opt.None … opt.Full.
type Level int

// Optimization presets.
const (
	LevelNone Level = iota
	LevelBasic
	LevelMedium
	LevelFull
)

// Passes overrides the preset with explicit per-pass toggles; a nil
// *Passes in Program means "use the Level's defaults". The fields mirror
// the optimizer's pass set (see DESIGN.md).
type Passes struct {
	ConstFold bool `json:"const_fold,omitempty"`
	CSE       bool `json:"cse,omitempty"`
	DCE       bool `json:"dce,omitempty"`

	DeadMemOps          bool `json:"dead_mem_ops,omitempty"`
	TokenRemoval        bool `json:"token_removal,omitempty"`
	TransitiveReduction bool `json:"transitive_reduction,omitempty"`

	MemMerge         bool `json:"mem_merge,omitempty"`
	StoreBeforeStore bool `json:"store_before_store,omitempty"`
	LoadAfterStore   bool `json:"load_after_store,omitempty"`
	LICM             bool `json:"licm,omitempty"`

	ReadOnlyLoops bool `json:"read_only_loops,omitempty"`
	MonotoneLoops bool `json:"monotone_loops,omitempty"`
	LoopDecouple  bool `json:"loop_decouple,omitempty"`
}

// Memory system kinds for MemConfig.Kind.
const (
	MemPerfect   = "perfect"
	MemRealistic = "realistic"
)

// Execution backends for Program.Backend.
const (
	BackendInterp   = "interp"
	BackendCompiled = "compiled"
)

// MemConfig describes the memory system a program runs against. The
// empty Kind means "perfect". Zero-valued parameters select the paper's
// defaults (Section 7.3), exactly like the in-process facade.
type MemConfig struct {
	Kind      string `json:"kind,omitempty"` // "perfect" (default) or "realistic"
	Ports     int    `json:"ports,omitempty"`
	QueueSize int    `json:"queue_size,omitempty"`

	PerfectLatency int64 `json:"perfect_latency,omitempty"`

	L1Bytes     int   `json:"l1_bytes,omitempty"`
	L1Latency   int64 `json:"l1_latency,omitempty"`
	L2Bytes     int   `json:"l2_bytes,omitempty"`
	L2Latency   int64 `json:"l2_latency,omitempty"`
	MemLatency  int64 `json:"mem_latency,omitempty"`
	WordGap     int64 `json:"word_gap,omitempty"`
	LineBytes   int   `json:"line_bytes,omitempty"`
	TLBPages    int   `json:"tlb_pages,omitempty"`
	TLBMissCost int64 `json:"tlb_miss_cost,omitempty"`
	PageBytes   int   `json:"page_bytes,omitempty"`
}

// SimConfig configures the dataflow simulation; zero fields select
// defaults (the server normalizes before caching, so two requests that
// differ only in defaulted fields share one compilation).
type SimConfig struct {
	Mem            *MemConfig `json:"mem,omitempty"`
	EdgeCap        int        `json:"edge_cap,omitempty"`
	MaxCycles      int64      `json:"max_cycles,omitempty"`
	MaxActivations int        `json:"max_activations,omitempty"`
}

// Program is the compile-time half of a request: everything that
// determines the resulting circuit and its default execution
// environment. It is the unit of caching and of shard routing — two
// requests with equal Programs hit one cache entry on one shard.
type Program struct {
	// Source is the cMinor program text.
	Source string `json:"source"`
	// Level selects the optimization preset.
	Level Level `json:"level"`
	// Passes, when present, overrides Level with explicit toggles.
	Passes *Passes `json:"passes,omitempty"`
	// Sim is the simulator configuration; nil means defaults.
	Sim *SimConfig `json:"sim,omitempty"`
	// Backend selects the execution engine: "" or BackendInterp for the
	// event-driven interpreter (the default), BackendCompiled for the
	// flat-bytecode engine. The two are bit-identical on results and
	// statistics; the choice still keys the compile cache, because a
	// cached Compiled carries its backend's prebuilt structures.
	Backend string `json:"backend,omitempty"`
	// Partitions is the event-domain count for partitioned interpreter
	// execution; 0 and 1 (the default) mean the sequential queue.
	// Results are bit-identical for every value, but the setting keys
	// the compile cache because a cached Compiled carries its prebuilt
	// domain assignment.
	Partitions int `json:"partitions,omitempty"`
}

// CompileRequest is the body of POST /v1/compile: compile (and cache) a
// program without running it.
type CompileRequest = Program

// RunRequest is the body of POST /v1/run: a program plus one invocation.
// The run-time fields (Entry, Args, TimeoutMS, Trace) never affect the
// cache key.
type RunRequest struct {
	Program
	// Entry is the function to run ("main" when empty).
	Entry string `json:"entry,omitempty"`
	// Args are the entry function's arguments.
	Args []int64 `json:"args,omitempty"`
	// TimeoutMS, when positive, bounds the request's total time in the
	// service (queue wait plus run); exceeding it returns a
	// "deadline"-classed error with HTTP 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace requests a cycle-accurate event trace of the run; the
	// response's TraceID can be downloaded from GET /v1/trace/{id} as
	// Chrome trace-event JSON.
	Trace bool `json:"trace,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Results come back in
// request order, one item per run, successes and failures interleaved.
type BatchRequest struct {
	Runs []RunRequest `json:"runs"`
}

// Stats summarizes one simulated execution; Cycles and Events are
// bit-stable across identical requests (the service's determinism
// contract).
type Stats struct {
	Cycles    int64 `json:"cycles"`
	Events    int64 `json:"events"`
	OpsFired  int64 `json:"ops_fired"`
	DynLoads  int64 `json:"dyn_loads"`
	DynStores int64 `json:"dyn_stores"`
	NullMem   int64 `json:"null_mem"`
	Calls     int64 `json:"calls"`
}

// RunResponse is the success body of POST /v1/run and of each batch item.
type RunResponse struct {
	Value    int64 `json:"value"`
	Stats    Stats `json:"stats"`
	CacheHit bool  `json:"cache_hit"`
	// WaitNS is the time the request spent queued; TotalNS its full
	// residence time in the service.
	WaitNS  int64 `json:"wait_ns"`
	TotalNS int64 `json:"total_ns"`
	// TraceID names the recorded trace when the request set Trace.
	TraceID string `json:"trace_id,omitempty"`
}

// CompileResponse is the success body of POST /v1/compile.
type CompileResponse struct {
	// Key is the program's shard key in hex.
	Key string `json:"key"`
	// CacheHit reports whether the program was already compiled.
	CacheHit bool `json:"cache_hit"`
}

// BatchItem is one batch result: exactly one of Run and Err is set.
type BatchItem struct {
	Run *RunResponse `json:"run,omitempty"`
	Err *Error       `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/batch; Results[i] answers
// Runs[i].
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// Key is a program's content address for shard routing: a SHA-256 digest
// over the versioned canonical JSON of the Program. It is stable across
// processes and hosts, which is what lets N daemons split one key space.
//
// Routing keys are computed on the raw wire form (a client cannot
// normalize configs); the server's compile cache additionally normalizes
// defaulted fields, so the cache may unify requests the router keeps
// apart — harmless, each shard just caches its own copy.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Key computes the program's shard key.
func (p Program) Key() Key {
	b, err := json.Marshal(p)
	if err != nil {
		// Program contains only marshalable fields; this is unreachable
		// short of memory corruption.
		panic("api: marshal Program: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(Version))
	h.Write([]byte{0})
	h.Write(b)
	var k Key
	h.Sum(k[:0])
	return k
}
