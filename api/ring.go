package api

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over daemon addresses: it assigns every
// program Key to exactly one owner, and adding or removing a node moves
// only ~1/N of the key space. The client and every daemon build the ring
// from the same peer list (order-insensitive), so they agree on
// ownership without coordination.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the number of virtual nodes per peer; enough that
// the largest shard stays within a few percent of the mean.
const DefaultReplicas = 64

// NewRing builds a ring over the given peers with `replicas` virtual
// nodes each (<=0 means DefaultReplicas). Duplicate and empty peers are
// dropped; an empty peer set yields a nil ring, whose Owner returns "".
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(peers))
	var nodes []string
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		nodes = append(nodes, p)
	}
	if len(nodes) == 0 {
		return nil
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes}
	var buf [8]byte
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			h := sha256.Sum256(append([]byte(n+"\x00"), buf[:]...))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(h[:8]), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the peer that owns k: the first virtual node clockwise
// from the key's position. A nil ring owns nothing and returns "".
func (r *Ring) Owner(k Key) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := binary.BigEndian.Uint64(k[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns up to n distinct peers in clockwise preference order
// from k's position: the first element is Owner(k), the rest are the
// failover sequence a client should walk when earlier peers are down.
// Every client derives the same sequence from the same peer list, so
// failover traffic for one dead peer concentrates on one survivor
// per key instead of scattering. A nil ring returns nil.
func (r *Ring) Owners(k Key, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := binary.BigEndian.Uint64(k[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Nodes returns the distinct peers on the ring in sorted order.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.nodes...)
}
