package api

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// jsonFields returns the sorted set of JSON names a struct type
// marshals, flattening embedded structs the way encoding/json does.
func jsonFields(t *testing.T, typ reflect.Type) []string {
	t.Helper()
	var names []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Anonymous && f.Type.Kind() == reflect.Struct && f.Tag.Get("json") == "" {
			names = append(names, jsonFields(t, f.Type)...)
			continue
		}
		tag := f.Tag.Get("json")
		if tag == "" {
			t.Errorf("%s.%s has no json tag; every wire field must name itself explicitly", typ.Name(), f.Name)
			continue
		}
		names = append(names, strings.Split(tag, ",")[0])
	}
	sort.Strings(names)
	return names
}

// TestWireStability pins the marshaled field names of every wire type.
// These names are the frozen v1 contract: adding a field means adding it
// HERE too (a deliberate, reviewed act); renaming or removing one breaks
// deployed clients and must fail this test.
func TestWireStability(t *testing.T) {
	want := map[reflect.Type][]string{
		reflect.TypeOf(Program{}): {"backend", "level", "partitions", "passes", "sim", "source"},
		reflect.TypeOf(RunRequest{}): {
			"args", "backend", "entry", "level", "partitions", "passes", "sim", "source", "timeout_ms", "trace",
		},
		reflect.TypeOf(BatchRequest{}): {"runs"},
		reflect.TypeOf(SimConfig{}):    {"edge_cap", "max_activations", "max_cycles", "mem"},
		reflect.TypeOf(MemConfig{}): {
			"kind", "l1_bytes", "l1_latency", "l2_bytes", "l2_latency", "line_bytes",
			"mem_latency", "page_bytes", "perfect_latency", "ports", "queue_size",
			"tlb_miss_cost", "tlb_pages", "word_gap",
		},
		reflect.TypeOf(Passes{}): {
			"const_fold", "cse", "dce", "dead_mem_ops", "licm", "load_after_store",
			"loop_decouple", "mem_merge", "monotone_loops", "read_only_loops",
			"store_before_store", "token_removal", "transitive_reduction",
		},
		reflect.TypeOf(Stats{}): {
			"calls", "cycles", "dyn_loads", "dyn_stores", "events", "null_mem", "ops_fired",
		},
		reflect.TypeOf(RunResponse{}): {
			"cache_hit", "stats", "total_ns", "trace_id", "value", "wait_ns",
		},
		reflect.TypeOf(CompileResponse{}): {"cache_hit", "key"},
		reflect.TypeOf(BatchItem{}):       {"error", "run"},
		reflect.TypeOf(BatchResponse{}):   {"results"},
		reflect.TypeOf(Error{}): {
			"class", "message", "report", "retry_after_ms", "status",
		},
	}
	for typ, fields := range want {
		got := jsonFields(t, typ)
		if !reflect.DeepEqual(got, fields) {
			t.Errorf("%s wire fields changed:\n got %v\nwant %v\n(renames/removals break the frozen v1 contract; additions must update this test)",
				typ.Name(), got, fields)
		}
	}
}

func TestStatusMapping(t *testing.T) {
	cases := []struct {
		class Class
		code  int
	}{
		{ClassBadRequest, 400},
		{ClassNotFound, 404},
		{ClassCompile, 422},
		{ClassSim, 422},
		{ClassOverload, 429},
		{ClassInternal, 500},
		{ClassClosed, 503},
		{ClassUnavailable, 503},
		{ClassDeadline, 504},
		{Class("future_class"), 500},
	}
	for _, c := range cases {
		if got := c.class.HTTPStatus(); got != c.code {
			t.Errorf("%s.HTTPStatus() = %d, want %d", c.class, got, c.code)
		}
	}
	// ClassForStatus must round-trip every distinct status to a class
	// with that same status.
	for _, code := range []int{400, 404, 422, 429, 500, 503, 504} {
		cl := ClassForStatus(code)
		if cl.HTTPStatus() != code {
			t.Errorf("ClassForStatus(%d) = %s, whose status is %d", code, cl, cl.HTTPStatus())
		}
	}
}

func TestErrorInterface(t *testing.T) {
	err := &Error{Class: ClassOverload, Message: "queue full", RetryAfterMS: 50}
	if !strings.Contains(err.Error(), "overload") || !strings.Contains(err.Error(), "queue full") {
		t.Errorf("Error() = %q, want class and message", err.Error())
	}
	if !err.Temporary() {
		t.Error("overload must be Temporary")
	}
	if (&Error{Class: ClassCompile}).Temporary() {
		t.Error("compile errors are not Temporary")
	}
	if !(&Error{Class: ClassUnavailable}).Temporary() {
		t.Error("unavailable must be Temporary: another peer may serve the key")
	}
}

func TestProgramKey(t *testing.T) {
	a := Program{Source: "int f(void){return 1;}", Level: LevelFull}
	b := Program{Source: "int f(void){return 1;}", Level: LevelFull}
	if a.Key() != b.Key() {
		t.Error("identical programs must share a key")
	}
	if a.Key() == (Program{Source: "int f(void){return 2;}", Level: LevelFull}).Key() {
		t.Error("different sources must differ in key")
	}
	if a.Key() == (Program{Source: a.Source, Level: LevelNone}).Key() {
		t.Error("different levels must differ in key")
	}
	if got := a.Key().String(); len(got) != 64 {
		t.Errorf("Key.String() = %q, want 64 hex chars", got)
	}
	// The key must survive a wire round-trip: decode(encode(p)) keys
	// identically, or the client and server would route differently.
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != a.Key() {
		t.Error("key changed across a JSON round-trip")
	}
}

func TestRingOwnership(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(peers, 0)
	// Order-insensitive: any permutation builds the same ring.
	r2 := NewRing([]string{peers[2], peers[0], peers[1], peers[0], ""}, 0)
	counts := map[string]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		p := Program{Source: fmt.Sprintf("int f(void){return %d;}", i)}
		k := p.Key()
		owner := r.Owner(k)
		if owner == "" {
			t.Fatal("non-empty ring returned no owner")
		}
		if o2 := r2.Owner(k); o2 != owner {
			t.Fatalf("permuted ring disagrees: %s vs %s", owner, o2)
		}
		counts[owner]++
	}
	// Every node must own a non-trivial share: consistent hashing with
	// 64 virtual nodes keeps the spread well within 3x of the mean.
	for _, p := range peers {
		if counts[p] < n/len(peers)/3 {
			t.Errorf("node %s owns only %d/%d keys — ring badly unbalanced: %v", p, counts[p], n, counts)
		}
	}
	// Removing a node must not move keys between the survivors.
	small := NewRing(peers[:2], 0)
	moved := 0
	for i := 0; i < n; i++ {
		k := Program{Source: fmt.Sprintf("int f(void){return %d;}", i)}.Key()
		was, now := r.Owner(k), small.Owner(k)
		if was == peers[2] {
			continue // its keys must redistribute
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes after removal; consistent hashing must not reshuffle", moved)
	}
}

func TestRingOwners(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(peers, 0)
	r2 := NewRing([]string{peers[3], peers[1], peers[0], peers[2]}, 0)
	for i := 0; i < 500; i++ {
		k := Program{Source: fmt.Sprintf("int f(void){return %d;}", i)}.Key()
		seq := r.Owners(k, len(peers))
		if len(seq) != len(peers) {
			t.Fatalf("Owners returned %d peers, want %d", len(seq), len(peers))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("Owners[0] = %s, Owner = %s; the primary must lead the sequence", seq[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, p := range seq {
			if seen[p] {
				t.Fatalf("Owners repeated peer %s: %v", p, seq)
			}
			seen[p] = true
		}
		// Permutation-stable: the failover sequence is part of the
		// routing contract, not just the primary.
		if got := r2.Owners(k, len(peers)); !reflect.DeepEqual(got, seq) {
			t.Fatalf("permuted ring disagrees on failover order: %v vs %v", got, seq)
		}
		// A truncated request returns a prefix of the full sequence.
		if got := r.Owners(k, 2); !reflect.DeepEqual(got, seq[:2]) {
			t.Fatalf("Owners(k, 2) = %v, want prefix %v", got, seq[:2])
		}
	}
	if got := r.Owners(Key{}, 99); len(got) != len(peers) {
		t.Errorf("Owners clamps to the node count; got %d", len(got))
	}
	var nilRing *Ring
	if nilRing.Owners(Key{}, 3) != nil {
		t.Error("nil ring must return no owners")
	}
}

func TestRingEmpty(t *testing.T) {
	if r := NewRing(nil, 0); r.Owner(Key{}) != "" || r.Nodes() != nil {
		t.Error("nil ring must own nothing")
	}
}
